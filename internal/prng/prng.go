// Package prng wraps math/rand sources with draw counting, making every
// random stream in the simulation serializable as (seed, position).
//
// A math/rand stream is fully determined by its seed and by how many
// values have been taken from its source: both rngSource.Int63 and
// rngSource.Uint64 advance the underlying generator by exactly one step.
// A Source therefore records its seed and counts source-level draws, and
// (seed, draws) is a complete, portable encoding of the stream's state —
// the checkpoint plane stores that pair for every live stream and the
// restored process verifies its replayed streams reached the same
// positions.
//
// Source implements rand.Source64 by delegation, so rand.New(src) takes
// the exact same fast paths as rand.New(rand.NewSource(seed)) and every
// derived value (Float64, NormFloat64, Perm, ...) is bit-identical to the
// unwrapped stream. The per-draw overhead is one counter increment; the
// golden experiment outputs prove the sequences are unchanged.
package prng

import "math/rand"

// Source is a counting math/rand source. Not safe for concurrent use —
// like the streams it wraps, a Source is confined to the simulation
// goroutine that owns it.
type Source struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

var _ rand.Source64 = (*Source)(nil)

// New returns a counting source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Rand is the convenience constructor for the common idiom: a generator on
// a fresh counting source, plus the source for state inspection.
func Rand(seed int64) (*rand.Rand, *Source) {
	s := New(seed)
	return rand.New(s), s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the stream position.
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.draws = 0
}

// SeedValue returns the seed the stream was (re)initialized with.
func (s *Source) SeedValue() int64 { return s.seed }

// Draws returns how many values have been taken from the source — the
// stream's position. (seed, draws) fully determines all future output.
func (s *Source) Draws() uint64 { return s.draws }

// State is the serializable form of one stream: who owns it, where it
// started, and how far it has advanced. The checkpoint snapshot carries
// one State per live stream; a restored run must reproduce the table
// exactly, which localizes any determinism bug to the first diverging
// stream instead of a whole-run output diff.
type State struct {
	Owner string `json:"owner"`
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// StateOf captures a source's state under the given owner tag.
func StateOf(owner string, s *Source) State {
	return State{Owner: owner, Seed: s.seed, Draws: s.draws}
}
