package prng

import (
	"math/rand"
	"testing"
)

// The wrapper's whole contract: rand.New over a counting source emits the
// exact sequence of rand.New(rand.NewSource(seed)), for every generator
// method the simulation uses. Any divergence would silently invalidate
// every golden file.
func TestSequencesMatchUnwrapped(t *testing.T) {
	const seed = 12345
	want := rand.New(rand.NewSource(seed))
	got, _ := Rand(seed)
	for i := 0; i < 1000; i++ {
		switch i % 6 {
		case 0:
			if g, w := got.Int63(), want.Int63(); g != w {
				t.Fatalf("Int63 draw %d: %d != %d", i, g, w)
			}
		case 1:
			if g, w := got.Float64(), want.Float64(); g != w {
				t.Fatalf("Float64 draw %d: %v != %v", i, g, w)
			}
		case 2:
			if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
				t.Fatalf("NormFloat64 draw %d: %v != %v", i, g, w)
			}
		case 3:
			if g, w := got.Uint64(), want.Uint64(); g != w {
				t.Fatalf("Uint64 draw %d: %d != %d", i, g, w)
			}
		case 4:
			if g, w := got.Intn(97), want.Intn(97); g != w {
				t.Fatalf("Intn draw %d: %d != %d", i, g, w)
			}
		case 5:
			if g, w := got.ExpFloat64(), want.ExpFloat64(); g != w {
				t.Fatalf("ExpFloat64 draw %d: %v != %v", i, g, w)
			}
		}
	}
}

// (seed, draws) must fully determine future output: a fresh stream
// fast-forwarded by the recorded draw count continues identically.
func TestStateIsCompleteEncoding(t *testing.T) {
	r1, s1 := Rand(77)
	for i := 0; i < 137; i++ {
		r1.NormFloat64() // rejection sampling: variable draws per call
	}
	st := StateOf("test", s1)
	if st.Seed != 77 || st.Draws == 0 {
		t.Fatalf("unexpected state %+v", st)
	}

	r2, s2 := Rand(st.Seed)
	for s2.Draws() < st.Draws {
		s2.Uint64() // discard at source level: one step per draw
	}
	for i := 0; i < 100; i++ {
		if g, w := r2.Float64(), r1.Float64(); g != w {
			t.Fatalf("draw %d after fast-forward: %v != %v", i, g, w)
		}
	}
	if s1.Draws() != s2.Draws() {
		t.Fatalf("positions diverged: %d vs %d", s1.Draws(), s2.Draws())
	}
}

func TestSeedResetsPosition(t *testing.T) {
	_, s := Rand(1)
	s.Int63()
	s.Seed(9)
	if s.Draws() != 0 || s.SeedValue() != 9 {
		t.Fatalf("Seed must reset position: draws=%d seed=%d", s.Draws(), s.SeedValue())
	}
}

func TestDrawsCountsSourceSteps(t *testing.T) {
	r, s := Rand(3)
	r.Int63()
	r.Uint64()
	if s.Draws() != 2 {
		t.Fatalf("expected 2 source draws, got %d", s.Draws())
	}
}
