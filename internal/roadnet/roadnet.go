// Package roadnet models the road topology vehicles move on: junctions,
// directed multi-lane segments, and shortest-path queries. The mobility
// models (highway car-following, Manhattan grid) and the road-aware routers
// (CAR's per-segment connectivity, GVGrid's grid paths) are built on it.
package roadnet

import (
	"fmt"
	"math"

	"github.com/vanetlab/relroute/internal/geom"
)

// JunctionID identifies a junction (intersection or road endpoint).
type JunctionID int32

// SegmentID identifies a directed road segment.
type SegmentID int32

// Junction is a point where segments meet.
type Junction struct {
	ID  JunctionID
	Pos geom.Vec2
}

// Segment is a directed, straight, multi-lane road between two junctions.
// A two-way road is a pair of segments with swapped endpoints.
type Segment struct {
	ID         SegmentID
	From, To   JunctionID
	Lanes      int     // number of lanes, ≥ 1
	LaneWidth  float64 // meters between lane center lines
	SpeedLimit float64 // m/s; the paper's v_m clamp for this road

	a, b geom.Vec2 // cached junction positions
	dir  geom.Vec2 // cached unit direction a→b
	len  float64
}

// Length returns the segment length in meters.
func (s *Segment) Length() float64 { return s.len }

// Dir returns the unit direction of travel.
func (s *Segment) Dir() geom.Vec2 { return s.dir }

// PosAt converts (lane, offset) road coordinates into plane coordinates.
// Lane 0 is the rightmost lane; lanes stack to the left of the travel
// direction (right-hand traffic).
func (s *Segment) PosAt(lane int, offset float64) geom.Vec2 {
	if offset < 0 {
		offset = 0
	}
	if offset > s.len {
		offset = s.len
	}
	p := s.a.Add(s.dir.Scale(offset))
	// lateral unit pointing left of travel
	left := geom.V(-s.dir.Y, s.dir.X)
	lateral := (float64(lane) + 0.5) * s.LaneWidth
	return p.Add(left.Scale(lateral))
}

// Heading returns the velocity vector for a vehicle travelling at speed v
// along the segment.
func (s *Segment) Heading(v float64) geom.Vec2 { return s.dir.Scale(v) }

// Network is an immutable road graph built by a Builder.
type Network struct {
	junctions []Junction
	segments  []*Segment
	out       map[JunctionID][]SegmentID // outgoing segments per junction
	in        map[JunctionID][]SegmentID
	bounds    geom.Rect
}

// Builder accumulates junctions and segments and produces a Network.
type Builder struct {
	n   *Network
	err error
}

// NewBuilder returns an empty road network builder.
func NewBuilder() *Builder {
	return &Builder{n: &Network{
		out: make(map[JunctionID][]SegmentID),
		in:  make(map[JunctionID][]SegmentID),
	}}
}

// AddJunction adds a junction at p and returns its ID.
func (b *Builder) AddJunction(p geom.Vec2) JunctionID {
	id := JunctionID(len(b.n.junctions))
	b.n.junctions = append(b.n.junctions, Junction{ID: id, Pos: p})
	return id
}

// AddSegment adds a directed segment between existing junctions and returns
// its ID. Invalid parameters poison the builder; the error surfaces from
// Build.
func (b *Builder) AddSegment(from, to JunctionID, lanes int, laneWidth, speedLimit float64) SegmentID {
	if b.err != nil {
		return -1
	}
	if int(from) >= len(b.n.junctions) || int(to) >= len(b.n.junctions) || from < 0 || to < 0 {
		b.err = fmt.Errorf("roadnet: segment references unknown junction %d→%d", from, to)
		return -1
	}
	if from == to {
		b.err = fmt.Errorf("roadnet: degenerate segment at junction %d", from)
		return -1
	}
	if lanes < 1 {
		lanes = 1
	}
	if laneWidth <= 0 {
		laneWidth = 3.5
	}
	if speedLimit <= 0 {
		speedLimit = 13.9 // 50 km/h default
	}
	a := b.n.junctions[from].Pos
	bb := b.n.junctions[to].Pos
	seg := &Segment{
		ID: SegmentID(len(b.n.segments)), From: from, To: to,
		Lanes: lanes, LaneWidth: laneWidth, SpeedLimit: speedLimit,
		a: a, b: bb, dir: bb.Sub(a).Unit(), len: a.Dist(bb),
	}
	b.n.segments = append(b.n.segments, seg)
	b.n.out[from] = append(b.n.out[from], seg.ID)
	b.n.in[to] = append(b.n.in[to], seg.ID)
	return seg.ID
}

// AddTwoWay adds a pair of opposite segments between two junctions and
// returns both IDs (forward, backward).
func (b *Builder) AddTwoWay(x, y JunctionID, lanes int, laneWidth, speedLimit float64) (SegmentID, SegmentID) {
	f := b.AddSegment(x, y, lanes, laneWidth, speedLimit)
	r := b.AddSegment(y, x, lanes, laneWidth, speedLimit)
	return f, r
}

// Build finalises the network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.n.segments) == 0 {
		return nil, fmt.Errorf("roadnet: network has no segments")
	}
	bounds := geom.NewRect(b.n.junctions[0].Pos, b.n.junctions[0].Pos)
	for _, j := range b.n.junctions {
		bounds = bounds.Union(geom.NewRect(j.Pos, j.Pos))
	}
	b.n.bounds = bounds.Expand(20)
	return b.n, nil
}

// Junctions returns the junction count.
func (n *Network) Junctions() int { return len(n.junctions) }

// Segments returns the segment count.
func (n *Network) Segments() int { return len(n.segments) }

// Junction returns the junction with the given ID.
func (n *Network) Junction(id JunctionID) Junction { return n.junctions[id] }

// Segment returns the segment with the given ID.
func (n *Network) Segment(id SegmentID) *Segment { return n.segments[id] }

// Bounds returns the bounding rectangle of the network plus margin.
func (n *Network) Bounds() geom.Rect { return n.bounds }

// Outgoing returns the segments leaving junction j. The returned slice is
// owned by the network; callers must not modify it.
func (n *Network) Outgoing(j JunctionID) []SegmentID { return n.out[j] }

// Incoming returns the segments arriving at junction j.
func (n *Network) Incoming(j JunctionID) []SegmentID { return n.in[j] }

// NextSegments returns the segments a vehicle can continue onto after s,
// excluding the immediate U-turn back along s where an alternative exists.
func (n *Network) NextSegments(s SegmentID) []SegmentID {
	seg := n.segments[s]
	outs := n.out[seg.To]
	next := make([]SegmentID, 0, len(outs))
	var uturn SegmentID = -1
	for _, o := range outs {
		if n.segments[o].To == seg.From {
			uturn = o
			continue
		}
		next = append(next, o)
	}
	if len(next) == 0 && uturn >= 0 {
		return []SegmentID{uturn}
	}
	return next
}

// ShortestPath returns the junction-to-junction path minimising total
// length as a sequence of segment IDs, using Dijkstra. ok is false when no
// path exists.
func (n *Network) ShortestPath(from, to JunctionID) (segs []SegmentID, dist float64, ok bool) {
	return n.shortest(from, to, func(s *Segment) float64 { return s.len })
}

// FastestPath is ShortestPath weighted by free-flow travel time.
func (n *Network) FastestPath(from, to JunctionID) (segs []SegmentID, cost float64, ok bool) {
	return n.shortest(from, to, func(s *Segment) float64 { return s.len / s.SpeedLimit })
}

// BestPath runs Dijkstra with an arbitrary non-negative segment cost. CAR
// uses it with −log(connectivity) weights to maximise the product of
// per-segment connectivity probabilities.
func (n *Network) BestPath(from, to JunctionID, cost func(*Segment) float64) (segs []SegmentID, total float64, ok bool) {
	return n.shortest(from, to, cost)
}

func (n *Network) shortest(from, to JunctionID, cost func(*Segment) float64) ([]SegmentID, float64, bool) {
	const inf = math.MaxFloat64
	dist := make([]float64, len(n.junctions))
	prev := make([]SegmentID, len(n.junctions))
	done := make([]bool, len(n.junctions))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	if int(from) >= len(dist) || int(to) >= len(dist) || from < 0 || to < 0 {
		return nil, 0, false
	}
	dist[from] = 0
	// Simple O(V²) Dijkstra: networks here have tens to hundreds of
	// junctions, so the dense scan beats heap overhead.
	for {
		u := JunctionID(-1)
		best := inf
		for i, d := range dist {
			if !done[i] && d < best {
				best = d
				u = JunctionID(i)
			}
		}
		if u < 0 {
			break
		}
		if u == to {
			break
		}
		done[u] = true
		for _, sid := range n.out[u] {
			s := n.segments[sid]
			c := cost(s)
			if c < 0 {
				c = 0
			}
			if nd := dist[u] + c; nd < dist[s.To] {
				dist[s.To] = nd
				prev[s.To] = sid
			}
		}
	}
	if dist[to] == inf {
		return nil, 0, false
	}
	var path []SegmentID
	for j := to; j != from; {
		sid := prev[j]
		if sid < 0 {
			return nil, 0, false
		}
		path = append(path, sid)
		j = n.segments[sid].From
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[to], true
}

// NearestJunction returns the junction closest to p.
func (n *Network) NearestJunction(p geom.Vec2) JunctionID {
	best := JunctionID(0)
	bd := math.Inf(1)
	for _, j := range n.junctions {
		if d := j.Pos.DistSq(p); d < bd {
			bd = d
			best = j.ID
		}
	}
	return best
}

// NearestSegment returns the segment whose center line passes closest to p,
// together with the travel offset of the closest point.
func (n *Network) NearestSegment(p geom.Vec2) (SegmentID, float64) {
	best := SegmentID(0)
	bd := math.Inf(1)
	bestOff := 0.0
	for _, s := range n.segments {
		seg := geom.Segment{A: s.a, B: s.b}
		q, t := seg.ClosestPoint(p)
		if d := q.DistSq(p); d < bd {
			bd = d
			best = s.ID
			bestOff = t * s.len
		}
	}
	return best, bestOff
}
