package roadnet

import (
	"fmt"
	"math"

	"github.com/vanetlab/relroute/internal/geom"
)

// Highway builds a straight bidirectional highway of the given length with
// lanesPerDir lanes in each direction. The eastbound carriageway runs along
// y≈0 and the westbound one is offset north of it. It returns the network
// and the two carriageway segment IDs (east, west).
func Highway(length float64, lanesPerDir int, speedLimit float64) (*Network, SegmentID, SegmentID, error) {
	if length <= 0 {
		return nil, 0, 0, fmt.Errorf("roadnet: highway length must be positive, got %v", length)
	}
	b := NewBuilder()
	const laneWidth = 3.5
	west0 := b.AddJunction(geom.V(0, 0))
	east0 := b.AddJunction(geom.V(length, 0))
	// Opposite carriageway offset so its lanes stack on the far side.
	gap := laneWidth * float64(lanesPerDir+1)
	west1 := b.AddJunction(geom.V(0, gap))
	east1 := b.AddJunction(geom.V(length, gap))
	eb := b.AddSegment(west0, east0, lanesPerDir, laneWidth, speedLimit)
	wb := b.AddSegment(east1, west1, lanesPerDir, laneWidth, speedLimit)
	// Median crossovers at both ends keep the directed road graph strongly
	// connected (vehicles turn around instead of parking at the ends, and
	// road-graph routing like CAR's can always find a path).
	b.AddSegment(east0, east1, 1, laneWidth, 8)
	b.AddSegment(west1, west0, 1, laneWidth, 8)
	n, err := b.Build()
	if err != nil {
		return nil, 0, 0, err
	}
	return n, eb, wb, nil
}

// Grid builds an nx × ny Manhattan street grid with the given block spacing
// in meters. Every street is two-way with the given number of lanes per
// direction. Degenerate 1×N (or N×1) grids are allowed and produce a
// straight two-way avenue of N−1 blocks; at least one dimension must be
// ≥ 2 so the network has a segment.
func Grid(nx, ny int, spacing float64, lanes int, speedLimit float64) (*Network, error) {
	if nx < 1 || ny < 1 || nx*ny < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 1×2 junctions, got %d×%d", nx, ny)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("roadnet: grid spacing must be positive, got %v", spacing)
	}
	b := NewBuilder()
	ids := make([][]JunctionID, nx)
	for i := 0; i < nx; i++ {
		ids[i] = make([]JunctionID, ny)
		for j := 0; j < ny; j++ {
			ids[i][j] = b.AddJunction(geom.V(float64(i)*spacing, float64(j)*spacing))
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				b.AddTwoWay(ids[i][j], ids[i+1][j], lanes, 3.5, speedLimit)
			}
			if j+1 < ny {
				b.AddTwoWay(ids[i][j], ids[i][j+1], lanes, 3.5, speedLimit)
			}
		}
	}
	return b.Build()
}

// Ring builds a circular (well, regular-polygon) ring road approximating a
// closed loop of the given circumference, used to hold vehicle density
// constant in steady-state experiments: vehicles that reach the end of a
// segment continue onto the next one forever.
func Ring(circumference float64, sides, lanes int, speedLimit float64) (*Network, error) {
	if sides < 3 {
		sides = 16
	}
	if circumference <= 0 {
		return nil, fmt.Errorf("roadnet: ring circumference must be positive, got %v", circumference)
	}
	b := NewBuilder()
	// radius from polygon perimeter
	side := circumference / float64(sides)
	radius := side / (2 * math.Sin(math.Pi/float64(sides)))
	js := make([]JunctionID, sides)
	for i := 0; i < sides; i++ {
		theta := 2 * math.Pi * float64(i) / float64(sides)
		js[i] = b.AddJunction(geom.V(radius*math.Cos(theta), radius*math.Sin(theta)))
	}
	for i := 0; i < sides; i++ {
		b.AddSegment(js[i], js[(i+1)%sides], lanes, 3.5, speedLimit)
	}
	return b.Build()
}
