package roadnet

import (
	"math"
	"testing"

	"github.com/vanetlab/relroute/internal/geom"
)

func buildT(t *testing.T) *Network {
	t.Helper()
	// a triangle with a one-way chord
	b := NewBuilder()
	a := b.AddJunction(geom.V(0, 0))
	c := b.AddJunction(geom.V(1000, 0))
	d := b.AddJunction(geom.V(0, 1000))
	b.AddTwoWay(a, c, 2, 3.5, 30)
	b.AddTwoWay(c, d, 1, 3.5, 20)
	b.AddSegment(a, d, 1, 3.5, 10) // one-way chord
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Error("empty network built without error")
	}
	b = NewBuilder()
	j := b.AddJunction(geom.V(0, 0))
	b.AddSegment(j, j, 1, 3.5, 10) // degenerate
	if _, err := b.Build(); err == nil {
		t.Error("degenerate segment accepted")
	}
	b = NewBuilder()
	j = b.AddJunction(geom.V(0, 0))
	b.AddSegment(j, JunctionID(99), 1, 3.5, 10)
	if _, err := b.Build(); err == nil {
		t.Error("unknown junction accepted")
	}
}

func TestBuilderDefaults(t *testing.T) {
	b := NewBuilder()
	a := b.AddJunction(geom.V(0, 0))
	c := b.AddJunction(geom.V(100, 0))
	id := b.AddSegment(a, c, 0, 0, 0) // all defaulted
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := n.Segment(id)
	if s.Lanes != 1 || s.LaneWidth != 3.5 || s.SpeedLimit <= 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestSegmentGeometry(t *testing.T) {
	n := buildT(t)
	s := n.Segment(0) // a→c eastbound
	if s.Length() != 1000 {
		t.Fatalf("length = %v", s.Length())
	}
	if s.Dir() != geom.V(1, 0) {
		t.Fatalf("dir = %v", s.Dir())
	}
	// lane 0 center line is laneWidth/2 left of travel direction
	p := s.PosAt(0, 500)
	if math.Abs(p.X-500) > 1e-9 || math.Abs(p.Y-1.75) > 1e-9 {
		t.Fatalf("PosAt = %v", p)
	}
	p1 := s.PosAt(1, 500)
	if math.Abs(p1.Y-5.25) > 1e-9 {
		t.Fatalf("lane 1 PosAt = %v", p1)
	}
	// offsets clamp
	if got := s.PosAt(0, -10); got != s.PosAt(0, 0) {
		t.Error("negative offset not clamped")
	}
	if got := s.PosAt(0, 9999); got != s.PosAt(0, 1000) {
		t.Error("overlong offset not clamped")
	}
	if got := s.Heading(20); got != geom.V(20, 0) {
		t.Fatalf("heading = %v", got)
	}
}

func TestAdjacency(t *testing.T) {
	n := buildT(t)
	if n.Junctions() != 3 || n.Segments() != 5 {
		t.Fatalf("junctions=%d segments=%d", n.Junctions(), n.Segments())
	}
	outs := n.Outgoing(0)
	if len(outs) != 2 { // a→c and a→d
		t.Fatalf("outgoing(a) = %v", outs)
	}
	ins := n.Incoming(0)
	if len(ins) != 1 { // c→a
		t.Fatalf("incoming(a) = %v", ins)
	}
}

func TestNextSegmentsAvoidsUTurn(t *testing.T) {
	n := buildT(t)
	// after a→c: choices at c are c→a (U-turn) and c→d; U-turn excluded
	next := n.NextSegments(0)
	if len(next) != 1 || n.Segment(next[0]).To != 2 {
		t.Fatalf("NextSegments = %v", next)
	}
	// dead-end U-turn is allowed when nothing else exists
	b := NewBuilder()
	x := b.AddJunction(geom.V(0, 0))
	y := b.AddJunction(geom.V(100, 0))
	f, _ := b.AddTwoWay(x, y, 1, 3.5, 10)
	n2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	next = n2.NextSegments(f)
	if len(next) != 1 {
		t.Fatalf("dead-end NextSegments = %v", next)
	}
}

func TestShortestPath(t *testing.T) {
	n := buildT(t)
	// a→d direct chord is 1000; a→c→d is 1000+~1414
	segs, dist, ok := n.ShortestPath(0, 2)
	if !ok || len(segs) != 1 || math.Abs(dist-1000) > 1e-9 {
		t.Fatalf("path=%v dist=%v ok=%v", segs, dist, ok)
	}
	// d→a has no chord back; must go d→c→a
	segs, dist, ok = n.ShortestPath(2, 0)
	if !ok || len(segs) != 2 {
		t.Fatalf("reverse path=%v dist=%v", segs, dist)
	}
	// unknown junctions
	if _, _, ok := n.ShortestPath(-1, 2); ok {
		t.Error("negative junction accepted")
	}
}

func TestFastestPathPrefersFastRoad(t *testing.T) {
	n := buildT(t)
	// chord a→d is 10 m/s (100 s); a→c→d is 1000/30 + 1414/20 ≈ 104 s —
	// close; shortest picks chord, fastest nearly indifferent but chord
	// still wins. Build a sharper contrast instead:
	b := NewBuilder()
	a := b.AddJunction(geom.V(0, 0))
	c := b.AddJunction(geom.V(1000, 0))
	d := b.AddJunction(geom.V(500, 100))
	b.AddSegment(a, c, 1, 3.5, 40) // fast direct
	slow1 := b.AddSegment(a, d, 1, 3.5, 5)
	slow2 := b.AddSegment(d, c, 1, 3.5, 5)
	_ = slow1
	_ = slow2
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	segs, _, ok := n.FastestPath(a, c)
	if !ok || len(segs) != 1 {
		t.Fatalf("fastest path = %v", segs)
	}
}

func TestBestPathCustomCost(t *testing.T) {
	n := buildT(t)
	// penalise the chord heavily: path must detour via c
	segs, _, ok := n.BestPath(0, 2, func(s *Segment) float64 {
		if s.From == 0 && s.To == 2 {
			return 1e9
		}
		return s.Length()
	})
	if !ok || len(segs) != 2 {
		t.Fatalf("custom-cost path = %v", segs)
	}
}

func TestNearest(t *testing.T) {
	n := buildT(t)
	if got := n.NearestJunction(geom.V(990, 30)); got != 1 {
		t.Fatalf("nearest junction = %v", got)
	}
	seg, off := n.NearestSegment(geom.V(500, 1))
	s := n.Segment(seg)
	if !(s.From == 0 && s.To == 1) && !(s.From == 1 && s.To == 0) {
		t.Fatalf("nearest segment = %v", seg)
	}
	if off < 400 || off > 600 {
		t.Fatalf("offset = %v", off)
	}
}

func TestHighwayPreset(t *testing.T) {
	n, eb, wb, err := Highway(2000, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	if n.Segment(eb).Length() != 2000 || n.Segment(wb).Length() != 2000 {
		t.Fatal("carriageway lengths wrong")
	}
	if n.Segment(eb).Dir().X <= 0 || n.Segment(wb).Dir().X >= 0 {
		t.Fatal("carriageway directions wrong")
	}
	// crossovers make the graph strongly connected
	for from := JunctionID(0); int(from) < n.Junctions(); from++ {
		for to := JunctionID(0); int(to) < n.Junctions(); to++ {
			if from == to {
				continue
			}
			if _, _, ok := n.ShortestPath(from, to); !ok {
				t.Fatalf("no path %d→%d: highway graph not strongly connected", from, to)
			}
		}
	}
	if _, _, _, err := Highway(-5, 2, 33); err == nil {
		t.Error("negative length accepted")
	}
}

func TestGridPreset(t *testing.T) {
	n, err := Grid(3, 3, 400, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	if n.Junctions() != 9 {
		t.Fatalf("junctions = %d", n.Junctions())
	}
	// 12 block edges × 2 directions
	if n.Segments() != 24 {
		t.Fatalf("segments = %d", n.Segments())
	}
	// corner to opposite corner is reachable
	if _, dist, ok := n.ShortestPath(0, 8); !ok || math.Abs(dist-1600) > 1e-6 {
		t.Fatalf("corner path dist = %v ok=%v", dist, ok)
	}
	// 1-wide grids are a supported degenerate line (see TestGridEdgeCases)
	if _, err := Grid(1, 3, 400, 1, 14); err != nil {
		t.Errorf("1×3 line grid rejected: %v", err)
	}
	if _, err := Grid(3, 3, -1, 1, 14); err == nil {
		t.Error("negative spacing accepted")
	}
}

func TestRingPreset(t *testing.T) {
	n, err := Ring(3200, 16, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if n.Segments() != 16 {
		t.Fatalf("segments = %d", n.Segments())
	}
	total := 0.0
	for i := 0; i < n.Segments(); i++ {
		total += n.Segment(SegmentID(i)).Length()
	}
	if math.Abs(total-3200) > 1 {
		t.Fatalf("circumference = %v", total)
	}
	// every segment continues onto exactly one next segment
	for i := 0; i < n.Segments(); i++ {
		if got := n.NextSegments(SegmentID(i)); len(got) != 1 {
			t.Fatalf("segment %d next = %v", i, got)
		}
	}
	if _, err := Ring(-1, 16, 1, 30); err == nil {
		t.Error("negative circumference accepted")
	}
}

func TestBounds(t *testing.T) {
	n := buildT(t)
	b := n.Bounds()
	if !b.Contains(geom.V(0, 0)) || !b.Contains(geom.V(1000, 1000)) {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestGridEdgeCases(t *testing.T) {
	// a 1×N grid is a straight two-way avenue: N junctions, 2(N−1) segments
	line, err := Grid(1, 5, 300, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	if line.Junctions() != 5 {
		t.Fatalf("1×5 junctions = %d", line.Junctions())
	}
	if line.Segments() != 8 {
		t.Fatalf("1×5 segments = %d, want 2×(5−1)", line.Segments())
	}
	// the line must stay strongly connected: a path exists between the ends
	if _, _, ok := line.ShortestPath(0, 4); !ok {
		t.Fatal("no path along the 1×5 line")
	}
	if _, _, ok := line.ShortestPath(4, 0); !ok {
		t.Fatal("no return path along the 1×5 line")
	}
	// N×1 is the transposed line
	if row, err := Grid(5, 1, 300, 1, 14); err != nil {
		t.Fatal(err)
	} else if row.Segments() != 8 {
		t.Fatalf("5×1 segments = %d", row.Segments())
	}
	// a single junction has no segments: rejected
	if _, err := Grid(1, 1, 300, 1, 14); err == nil {
		t.Fatal("1×1 grid accepted")
	}
	if _, err := Grid(0, 4, 300, 1, 14); err == nil {
		t.Fatal("0×4 grid accepted")
	}
	// zero and negative spacing are rejected, not built degenerate
	if _, err := Grid(3, 3, 0, 1, 14); err == nil {
		t.Fatal("zero spacing accepted")
	}
	if _, err := Grid(3, 3, -50, 1, 14); err == nil {
		t.Fatal("negative spacing accepted")
	}
}

func TestNearestSegmentOnGridBoundaries(t *testing.T) {
	n, err := Grid(3, 3, 100, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	// a query exactly on a corner junction resolves to a segment touching
	// that corner, with the offset at one of its ends
	for _, corner := range []geom.Vec2{geom.V(0, 0), geom.V(200, 200), geom.V(0, 200), geom.V(200, 0)} {
		sid, off := n.NearestSegment(corner)
		seg := n.Segment(sid)
		if seg == nil {
			t.Fatalf("corner %v: nil segment", corner)
		}
		a := n.Junction(seg.From).Pos
		b := n.Junction(seg.To).Pos
		if a.Dist(corner) > 1e-9 && b.Dist(corner) > 1e-9 {
			t.Errorf("corner %v resolved to segment %d (%v→%v) not touching it", corner, sid, a, b)
		}
		if off < -1e-9 || off > seg.Length()+1e-9 {
			t.Errorf("corner %v: offset %v outside [0, %v]", corner, off, seg.Length())
		}
	}
	// a query outside the grid clamps onto the boundary street
	sid, off := n.NearestSegment(geom.V(-40, 150))
	seg := n.Segment(sid)
	mid := seg.PosAt(0, off)
	if mid.X > 60 {
		t.Errorf("outside-west query resolved deep inside the grid: %v (segment %d)", mid, sid)
	}
	// a query at a block center is equidistant from four streets and must
	// still resolve deterministically to a valid segment
	sid1, _ := n.NearestSegment(geom.V(50, 50))
	sid2, _ := n.NearestSegment(geom.V(50, 50))
	if sid1 != sid2 {
		t.Errorf("block-center query not deterministic: %d vs %d", sid1, sid2)
	}
}
