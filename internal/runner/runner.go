// Package runner executes campaigns of simulation runs on a worker pool.
//
// Every sim.Engine run is single-threaded and self-contained, so a grid of
// scenarios — the shape of every figure, table, and ablation of the paper —
// is embarrassingly parallel. The runner accepts a declarative description
// of such a grid (protocol × scenario.Options × replication seed), fans the
// runs out across a bounded number of goroutines, and collects results in
// submission order. Because each run derives all randomness from its own
// Options.Seed and results are indexed by submission position, output is
// byte-identical whether the pool uses one worker or many.
package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vanetlab/relroute/internal/checkpoint"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/scenario"
	"github.com/vanetlab/relroute/internal/sim"
)

// Run is one simulation execution: a protocol instantiated on one option
// set, with an optional post-build hook.
type Run struct {
	// Label tags the run for table rendering (optional; defaults to
	// "protocol/scenario-name" in results).
	Label string
	// Protocol is the routing protocol name (see scenario.Protocols).
	Protocol string
	// Opts parameterise the scenario; Opts.Seed fully determines the run.
	Opts scenario.Options
	// Setup, if non-nil, is applied to the built scenario before execution —
	// the hook for failure injection and extra instrumentation events.
	Setup func(*scenario.Scenario)
}

// Spec declares a run grid: the cross product Protocols × Grid × Seeds,
// expanded in deterministic order (protocol-major, then grid point, then
// seed).
type Spec struct {
	// Protocols to run on every grid point.
	Protocols []string
	// Grid is the list of scenario option sets.
	Grid []scenario.Options
	// Seeds are replication seeds. Each seed overrides the grid point's
	// Options.Seed for that replication. Empty means "one replication with
	// the seed already in the options".
	Seeds []int64
	// Setup is applied to every built scenario of the spec (optional).
	Setup func(*scenario.Scenario)
}

// Runs expands the spec into the ordered run list.
func (s Spec) Runs() []Run {
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0} // sentinel: keep Options.Seed
	}
	out := make([]Run, 0, len(s.Protocols)*len(s.Grid)*len(seeds))
	for _, proto := range s.Protocols {
		for _, opts := range s.Grid {
			for _, seed := range seeds {
				o := opts
				if len(s.Seeds) > 0 {
					o.Seed = seed
				}
				out = append(out, Run{Protocol: proto, Opts: o, Setup: s.Setup})
			}
		}
	}
	return out
}

// Campaign is an ordered batch of runs. Results always come back in the
// same order runs were added.
type Campaign struct {
	Runs []Run
}

// New builds a campaign from specs, expanding each in order.
func New(specs ...Spec) Campaign {
	var c Campaign
	for _, s := range specs {
		c.AddSpec(s)
	}
	return c
}

// Add appends explicit runs.
func (c *Campaign) Add(runs ...Run) { c.Runs = append(c.Runs, runs...) }

// AddSpec appends a spec's expansion.
func (c *Campaign) AddSpec(s Spec) { c.Runs = append(c.Runs, s.Runs()...) }

// Result pairs a run with its outcome. Exactly one of Summary/Err is
// meaningful.
type Result struct {
	Run     Run
	Summary metrics.Summary
	Err     error
	// Attempts is how many times the run was executed (> 1 only when the
	// pool retried a transient failure).
	Attempts int
}

// Pool executes campaigns on a bounded worker pool.
type Pool struct {
	// Workers is the goroutine count; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each run attempt's wall-clock time; zero means no
	// limit. On expiry the attempt's engine is interrupted at the next
	// event boundary and the attempt records a timeout error, so one hung
	// simulation degrades to a recorded failure instead of wedging its
	// worker.
	Timeout time.Duration
	// Retries is how many extra attempts a transiently failed run (panic,
	// timeout, or mid-run error — not a scenario-build error) is given
	// before its error is recorded. Zero means a single attempt.
	Retries int
	// CheckpointDir, when non-empty, enables periodic auto-checkpointing:
	// each run writes a snapshot to <dir>/runNNNN.ckpt at every checkpoint
	// boundary. A run that completes removes its file; a run that fails —
	// including one that exhausts Retries — leaves its last boundary
	// snapshot on disk for post-mortem inspection. Retried attempts always
	// start from a fresh build, never from the aborted attempt's
	// checkpoint: an attempt is transiently failed precisely when its
	// environment misbehaved, and resuming it would re-trust that
	// environment's partial state. Runs whose Options carry an in-memory
	// channel model are not capturable and run unsegmented.
	CheckpointDir string
	// CheckpointEvery is the simulation-time spacing of checkpoint
	// boundaries in seconds; <= 0 means the checkpoint package default.
	CheckpointEvery float64
}

// checkpointPath names run i's snapshot file inside CheckpointDir.
func (p Pool) checkpointPath(i int) string {
	return filepath.Join(p.CheckpointDir, fmt.Sprintf("run%04d.ckpt", i))
}

func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute runs the campaign and returns one result per run, in submission
// order regardless of completion order or worker count.
func (p Pool) Execute(c Campaign) []Result {
	return p.ExecuteResumable(context.Background(), c, nil)
}

// ExecuteContext is Execute under a cancellable context: when ctx is
// cancelled, in-flight runs are interrupted at their next event boundary
// and record a cancellation error, and no further runs start. Results
// still come back in submission order, one per run.
func (p Pool) ExecuteContext(ctx context.Context, c Campaign) []Result {
	return p.ExecuteResumable(ctx, c, nil)
}

// ExecuteResumable is ExecuteContext against a durable campaign journal:
// runs the journal already records as completed are skipped — their
// recorded summaries are returned in place, byte-identical to the
// original execution — and every newly completed run is appended to the
// journal before its worker moves on. A nil journal degrades to
// ExecuteContext. Killing the process and re-running the same campaign
// against the same journal therefore completes exactly the unfinished
// remainder.
func (p Pool) ExecuteResumable(ctx context.Context, c Campaign, j *Journal) []Result {
	n := len(c.Runs)
	results := make([]Result, n)
	if n == 0 {
		return results
	}
	if p.CheckpointDir != "" {
		os.MkdirAll(p.CheckpointDir, 0o755)
	}
	runOne := func(i int) {
		if j != nil {
			if res, ok := j.Completed(i); ok {
				label := res.Run.Label
				res.Run = c.Runs[i]
				if res.Run.Label == "" {
					res.Run.Label = label
				}
				results[i] = res
				return
			}
		}
		results[i] = p.execute(ctx, i, c.Runs[i])
		if j != nil && results[i].Err == nil {
			j.Record(i, results[i])
		}
	}
	workers := p.workers(n)
	if workers == 1 {
		for i := range c.Runs {
			runOne(i)
		}
		return results
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// Execute is the package-level convenience: run a campaign with the given
// worker count (<= 0 means GOMAXPROCS).
func Execute(c Campaign, workers int) []Result {
	return Pool{Workers: workers}.Execute(c)
}

// execute runs r under the pool's timeout and retry policy: transient
// failures are re-attempted from a fresh build (every attempt is the same
// deterministic simulation, so a retry only helps against environmental
// faults — OOM-killed goroutines, timeouts on a loaded machine), while
// scenario-build errors and campaign cancellation fail immediately.
func (p Pool) execute(ctx context.Context, idx int, r Run) Result {
	for attempt := 1; ; attempt++ {
		res, transient := p.attempt(ctx, idx, r)
		res.Attempts = attempt
		if res.Err == nil || !transient || attempt > p.Retries {
			return res
		}
	}
}

// attempt builds and runs one scenario, recovering panics into errors so a
// bad run cannot take down sibling workers. The transient flag reports
// whether retrying could plausibly change the outcome. Every attempt
// builds fresh; when checkpointing is on, the attempt executes segmented
// and leaves its last boundary snapshot behind on failure.
func (p Pool) attempt(ctx context.Context, idx int, r Run) (res Result, transient bool) {
	res.Run = r
	transient = true
	defer func() {
		if pv := recover(); pv != nil {
			res.Err = fmt.Errorf("runner: %s: panic: %v", r.Protocol, pv)
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", r.Protocol, err)
		return res, false
	}
	sc, err := scenario.Build(r.Protocol, r.Opts)
	if err != nil {
		res.Err = err
		return res, false
	}
	if r.Setup != nil {
		r.Setup(sc)
	}
	runCtx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, p.Timeout)
		defer cancel()
	}
	if runCtx.Done() != nil {
		// Interrupt is checked at event-boundary granularity, so the
		// engine unwinds within a bounded number of events of expiry.
		stop := context.AfterFunc(runCtx, sc.World.Engine().Interrupt)
		defer stop()
	}
	var sum metrics.Summary
	if p.CheckpointDir != "" && r.Opts.Channel == nil {
		sum, _, err = checkpoint.Run(sc, checkpoint.Policy{
			Path:     p.checkpointPath(idx),
			Every:    p.CheckpointEvery,
			HasSetup: r.Setup != nil,
		})
	} else {
		sum, err = sc.Run()
	}
	if err != nil {
		if errors.Is(err, sim.ErrInterrupted) {
			switch {
			case ctx.Err() != nil:
				err = fmt.Errorf("%w (campaign cancelled)", err)
				transient = false
			case p.Timeout > 0:
				err = fmt.Errorf("%w (timed out after %v)", err, p.Timeout)
			}
		}
		res.Err = err
		return res, transient
	}
	if res.Run.Label == "" {
		res.Run.Label = r.Protocol + "/" + sc.Name
	}
	res.Summary = sum
	return res, true
}

// Replications groups results into consecutive blocks of k — one block
// per (protocol, grid point) cell when the campaign was expanded from
// specs whose Seeds axis has length k. It owns the "seeds expand
// innermost" invariant of Spec.Runs so callers don't re-derive it. A
// trailing partial block (len(results) not divisible by k) is dropped.
func Replications(results []Result, k int) [][]Result {
	if k < 1 {
		k = 1
	}
	out := make([][]Result, 0, len(results)/k)
	for i := 0; i+k <= len(results); i += k {
		out = append(out, results[i:i+k])
	}
	return out
}

// Summaries unwraps results into summaries, returning the first error
// encountered (annotated with the failing run) if any run failed.
func Summaries(results []Result) ([]metrics.Summary, error) {
	out := make([]metrics.Summary, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("runner: run %d (%s): %w", i, r.Run.Protocol, r.Err)
		}
		out[i] = r.Summary
	}
	return out, nil
}
