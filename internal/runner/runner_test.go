package runner

import (
	"errors"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/scenario"
	"github.com/vanetlab/relroute/internal/sim"
)

func quickOpts(seed int64) scenario.Options {
	return scenario.Options{
		Seed: seed, Vehicles: 25, HighwayLength: 1200,
		Duration: 15, Flows: 2, FlowPackets: 4,
	}
}

func testCampaign() Campaign {
	return New(Spec{
		Protocols: []string{"Greedy", "AODV"},
		Grid:      []scenario.Options{quickOpts(0), {Vehicles: 15, HighwayLength: 1000, Duration: 12, Flows: 2, FlowPackets: 3}},
		Seeds:     []int64{1, 2},
	})
}

func TestSpecExpansionOrder(t *testing.T) {
	c := testCampaign()
	if len(c.Runs) != 8 {
		t.Fatalf("runs = %d, want 2 protocols × 2 grid points × 2 seeds = 8", len(c.Runs))
	}
	// protocol-major, grid point next, seeds innermost
	wantProto := []string{"Greedy", "Greedy", "Greedy", "Greedy", "AODV", "AODV", "AODV", "AODV"}
	wantSeed := []int64{1, 2, 1, 2, 1, 2, 1, 2}
	for i, r := range c.Runs {
		if r.Protocol != wantProto[i] || r.Opts.Seed != wantSeed[i] {
			t.Fatalf("run %d = %s seed %d, want %s seed %d",
				i, r.Protocol, r.Opts.Seed, wantProto[i], wantSeed[i])
		}
	}
	// without a Seeds axis, the grid point's own seed survives
	runs := Spec{Protocols: []string{"Greedy"}, Grid: []scenario.Options{quickOpts(42)}}.Runs()
	if len(runs) != 1 || runs[0].Opts.Seed != 42 {
		t.Fatalf("seedless spec mangled options: %+v", runs)
	}
}

// TestParallelExecutionDeterministic is the determinism contract: the same
// campaign produces identical summaries, in identical order, whether the
// pool uses one worker or many.
func TestParallelExecutionDeterministic(t *testing.T) {
	seq, err := Summaries(Execute(testCampaign(), 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Summaries(Execute(testCampaign(), 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel execution diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	// sanity: the campaign actually simulated something
	sent := 0
	for _, s := range seq {
		sent += s.DataSent
	}
	if sent == 0 {
		t.Fatal("campaign sent no data packets")
	}
}

func TestExecuteErrorIsolation(t *testing.T) {
	var c Campaign
	c.Add(
		Run{Protocol: "Greedy", Opts: quickOpts(1)},
		Run{Protocol: "NoSuchProto", Opts: quickOpts(1)},
	)
	results := Execute(c, 2)
	if results[0].Err != nil {
		t.Fatalf("healthy run failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if _, err := Summaries(results); err == nil {
		t.Fatal("Summaries swallowed the run error")
	}
}

func TestSetupHookRuns(t *testing.T) {
	called := false
	var c Campaign
	c.Add(Run{Protocol: "Greedy", Opts: quickOpts(1), Setup: func(sc *scenario.Scenario) {
		called = true
		if sc.World == nil {
			t.Error("setup hook received unbuilt scenario")
		}
	}})
	if _, err := Summaries(Execute(c, 1)); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("setup hook not invoked")
	}
}

// TestTimeoutInterruptsHungRun wedges one run with a self-rescheduling
// zero-delay event — simulated time never advances — and checks the pool's
// timeout degrades it to a recorded error while the sibling run completes.
func TestTimeoutInterruptsHungRun(t *testing.T) {
	var c Campaign
	c.Add(
		Run{Protocol: "Greedy", Opts: quickOpts(1), Setup: func(sc *scenario.Scenario) {
			eng := sc.World.Engine()
			var spin func()
			spin = func() { eng.After(0, spin) }
			eng.After(0, spin)
		}},
		Run{Protocol: "Greedy", Opts: quickOpts(1)},
	)
	results := Pool{Workers: 2, Timeout: 100 * time.Millisecond}.Execute(c)
	if results[0].Err == nil {
		t.Fatal("hung run completed without error")
	}
	if !errors.Is(results[0].Err, sim.ErrInterrupted) {
		t.Fatalf("hung run error = %v, want wrapped sim.ErrInterrupted", results[0].Err)
	}
	if !strings.Contains(results[0].Err.Error(), "timed out") {
		t.Fatalf("hung run error %q does not mention the timeout", results[0].Err)
	}
	if results[0].Attempts != 1 {
		t.Fatalf("hung run attempts = %d, want 1 (no retries configured)", results[0].Attempts)
	}
	if results[1].Err != nil {
		t.Fatalf("sibling run failed: %v", results[1].Err)
	}
	if results[1].Summary.DataSent == 0 {
		t.Fatal("sibling run simulated nothing")
	}
}

// TestRetryRecoversTransientPanic panics a run's first attempt only; with
// one retry the second attempt must succeed and be counted.
func TestRetryRecoversTransientPanic(t *testing.T) {
	var calls atomic.Int64
	var c Campaign
	c.Add(Run{Protocol: "Greedy", Opts: quickOpts(1), Setup: func(sc *scenario.Scenario) {
		if calls.Add(1) == 1 {
			panic("transient fault")
		}
	}})
	results := Pool{Workers: 1, Retries: 1}.Execute(c)
	if results[0].Err != nil {
		t.Fatalf("retried run still failed: %v", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", results[0].Attempts)
	}
	if calls.Load() != 2 {
		t.Fatalf("setup ran %d times, want 2", calls.Load())
	}
	if results[0].Summary.DataSent == 0 {
		t.Fatal("retried run simulated nothing")
	}
}

// TestBuildErrorsAreNotRetried: a bad configuration is deterministic, so
// the pool must fail it once instead of burning its retry budget.
func TestBuildErrorsAreNotRetried(t *testing.T) {
	var c Campaign
	c.Add(Run{Protocol: "NoSuchProto", Opts: quickOpts(1)})
	results := Pool{Workers: 1, Retries: 3}.Execute(c)
	if results[0].Err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if results[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (build errors are permanent)", results[0].Attempts)
	}
}

// TestRetryBudgetIsBounded: a run that always panics exhausts its retries
// and records the error with the full attempt count.
func TestRetryBudgetIsBounded(t *testing.T) {
	var calls atomic.Int64
	var c Campaign
	c.Add(Run{Protocol: "Greedy", Opts: quickOpts(1), Setup: func(sc *scenario.Scenario) {
		calls.Add(1)
		panic("persistent fault")
	}})
	results := Pool{Workers: 1, Retries: 2}.Execute(c)
	if results[0].Err == nil {
		t.Fatal("always-panicking run reported success")
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", results[0].Attempts)
	}
	if calls.Load() != 3 {
		t.Fatalf("setup ran %d times, want 3", calls.Load())
	}
}

func TestReplications(t *testing.T) {
	c := testCampaign() // 2 protocols × 2 grid points × 2 seeds
	results := make([]Result, len(c.Runs))
	for i, r := range c.Runs {
		results[i] = Result{Run: r}
	}
	blocks := Replications(results, 2)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 cells", len(blocks))
	}
	for i, b := range blocks {
		if len(b) != 2 {
			t.Fatalf("block %d has %d results", i, len(b))
		}
		if b[0].Run.Protocol != b[1].Run.Protocol ||
			b[0].Run.Opts.Vehicles != b[1].Run.Opts.Vehicles {
			t.Fatalf("block %d mixes cells: %+v / %+v", i, b[0].Run, b[1].Run)
		}
	}
	if got := Replications(results, 0); len(got) != len(results) {
		t.Fatalf("k=0 should clamp to singleton blocks, got %d", len(got))
	}
}

func TestAggregateAcrossSeeds(t *testing.T) {
	spec := Spec{
		Protocols: []string{"Greedy"},
		Grid:      []scenario.Options{quickOpts(0)},
		Seeds:     []int64{1, 2, 3},
	}
	sums, err := Summaries(Execute(New(spec), 0))
	if err != nil {
		t.Fatal(err)
	}
	a := metrics.AggregateSummaries(sums)
	if a.N != 3 {
		t.Fatalf("aggregate folded %d replications, want 3", a.N)
	}
	if a.DataSent.Mean <= 0 {
		t.Fatalf("aggregate has no traffic: %+v", a.DataSent)
	}
}

// BenchmarkCampaign times one fixed 12-run campaign under a single worker
// and under GOMAXPROCS workers: the parallel case must finish measurably
// faster on multi-core hardware.
func BenchmarkCampaign(b *testing.B) {
	campaign := func() Campaign {
		return New(Spec{
			Protocols: []string{"Greedy", "AODV", "TBP-SS"},
			Grid:      []scenario.Options{quickOpts(0), {Vehicles: 35, HighwayLength: 1500, Duration: 20, Flows: 3, FlowPackets: 6}},
			Seeds:     []int64{1, 2},
		})
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Summaries(Execute(campaign(), workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
