package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vanetlab/relroute/internal/checkpoint"
	"github.com/vanetlab/relroute/internal/scenario"
	"github.com/vanetlab/relroute/internal/sim"
)

// TestCheckpointedExecutionMatchesPlain: auto-checkpointing segments each
// run but checkpoint boundaries are event-free, so summaries must be
// byte-identical to unsegmented execution — and completed runs must clean
// up their snapshot files.
func TestCheckpointedExecutionMatchesPlain(t *testing.T) {
	c := testCampaign()
	plain, err := Summaries(Execute(c, 2))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckpt, err := Summaries(Pool{Workers: 2, CheckpointDir: dir, CheckpointEvery: 4}.Execute(c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ckpt) {
		t.Fatalf("checkpointed execution diverged from plain:\nplain: %+v\nckpt:  %+v", plain, ckpt)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("completed campaign left checkpoint files behind: %v", left)
	}
}

// TestTimedOutRunLeavesLoadableCheckpoint wedges a run mid-simulation —
// after two checkpoint boundaries have passed — and checks that the
// timed-out attempt leaves its last boundary snapshot on disk as a valid,
// loadable post-mortem artifact, and that the retry re-ran from scratch
// instead of resuming the aborted attempt.
func TestTimedOutRunLeavesLoadableCheckpoint(t *testing.T) {
	var builds atomic.Int64
	var c Campaign
	c.Add(Run{Protocol: "Greedy", Opts: quickOpts(1), Setup: func(sc *scenario.Scenario) {
		builds.Add(1)
		eng := sc.World.Engine()
		var spin func()
		spin = func() { eng.After(0, spin) }
		eng.After(6, spin) // wedge at t=6, past the boundaries at t=2 and t=4
	}})
	dir := t.TempDir()
	results := Pool{
		Workers: 1, Timeout: 200 * time.Millisecond, Retries: 1,
		CheckpointDir: dir, CheckpointEvery: 2,
	}.Execute(c)

	if results[0].Err == nil {
		t.Fatal("wedged run reported success")
	}
	if !errors.Is(results[0].Err, sim.ErrInterrupted) {
		t.Fatalf("err = %v, want wrapped sim.ErrInterrupted", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", results[0].Attempts)
	}
	if builds.Load() != 2 {
		t.Fatalf("scenario built %d times, want 2 — every retry must start from a fresh build", builds.Load())
	}

	snap, err := checkpoint.ReadFile(filepath.Join(dir, "run0000.ckpt"))
	if err != nil {
		t.Fatalf("timed-out run left no loadable checkpoint: %v", err)
	}
	if snap.T != 4 {
		t.Fatalf("post-mortem snapshot at t=%g, want 4 (the last boundary before the wedge; a resumed attempt would have left a later one)", snap.T)
	}
	if !snap.HasSetup {
		t.Fatal("snapshot of a Setup-hooked run is not marked HasSetup")
	}
	// A HasSetup snapshot is rebuildable only by the process owning the
	// hook: self-contained Restore must refuse it.
	if _, err := checkpoint.Restore(snap); err == nil {
		t.Fatal("Restore accepted a HasSetup snapshot")
	}
}

// TestJournalResumeSkipsCompleted: a finished campaign resumed against its
// journal re-executes nothing and reproduces the recorded summaries
// exactly.
func TestJournalResumeSkipsCompleted(t *testing.T) {
	c := testCampaign()
	path := filepath.Join(t.TempDir(), "campaign.jsonl")

	j, err := OpenJournal(path, c)
	if err != nil {
		t.Fatal(err)
	}
	first := Pool{Workers: 4}.ExecuteResumable(context.Background(), c, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := Summaries(first)
	if err != nil {
		t.Fatal(err)
	}

	// Resume in a "fresh process": reopen the journal and re-execute. A
	// pool with zero retries and a poisoned Setup would fail any run that
	// actually executes — instrument with a counter instead.
	var executed atomic.Int64
	c2 := testCampaign()
	for i := range c2.Runs {
		c2.Runs[i].Setup = func(*scenario.Scenario) { executed.Add(1) }
	}
	j2, err := OpenJournal(path, c2)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Remaining(len(c2.Runs)); got != 0 {
		t.Fatalf("journal reports %d remaining runs, want 0", got)
	}
	second := Pool{Workers: 4}.ExecuteResumable(context.Background(), c2, j2)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Fatalf("resume re-executed %d completed runs", executed.Load())
	}
	got, err := Summaries(second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal-reconstructed summaries diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJournalResumeCompletesRemainder: a campaign killed partway (here:
// one run fails, so it is never journaled) finishes the remainder on
// resume without touching the finished runs, and the merged table equals
// a clean run's.
func TestJournalResumeCompletesRemainder(t *testing.T) {
	mk := func(failFirst bool) Campaign {
		var c Campaign
		c.Add(Run{Protocol: "Greedy", Opts: quickOpts(1)})
		run2 := Run{Protocol: "AODV", Opts: quickOpts(2)}
		if failFirst {
			run2.Setup = func(*scenario.Scenario) { panic("simulated crash") }
		}
		c.Add(run2)
		return c
	}
	want, err := Summaries(Execute(mk(false), 1))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path, mk(true))
	if err != nil {
		t.Fatal(err)
	}
	interrupted := Pool{Workers: 1}.ExecuteResumable(context.Background(), mk(true), j)
	j.Close()
	if interrupted[0].Err != nil || interrupted[1].Err == nil {
		t.Fatalf("setup: want run 0 ok, run 1 failed; got %v / %v", interrupted[0].Err, interrupted[1].Err)
	}

	// Setup hooks are not part of the campaign fingerprint, so the
	// "restarted process" opens the same journal with the crash removed.
	var executed atomic.Int64
	c2 := mk(false)
	first := c2.Runs[0].Setup
	c2.Runs[0].Setup = func(sc *scenario.Scenario) {
		executed.Add(1)
		if first != nil {
			first(sc)
		}
	}
	j2, err := OpenJournal(path, c2)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Remaining(len(c2.Runs)); got != 1 {
		t.Fatalf("journal reports %d remaining runs, want 1", got)
	}
	resumed := Pool{Workers: 1}.ExecuteResumable(context.Background(), c2, j2)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 0 {
		t.Fatal("resume re-executed the already-journaled run")
	}
	got, err := Summaries(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed campaign table diverged from clean run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJournalRejectsForeignCampaign: resuming a journal against a
// different run list must fail loudly, never silently mix results.
func TestJournalRejectsForeignCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path, testCampaign())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	var other Campaign
	other.Add(Run{Protocol: "Greedy", Opts: quickOpts(99)})
	if _, err := OpenJournal(path, other); err == nil {
		t.Fatal("journal accepted a different campaign")
	}

	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, testCampaign()); err == nil {
		t.Fatal("journal accepted a non-journal file")
	}
}

// TestExecuteContextCancellation: a cancelled context fails pending runs
// immediately — without burning the retry budget — and interrupts
// in-flight ones.
func TestExecuteContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Pool{Workers: 2, Retries: 3}.ExecuteContext(ctx, testCampaign())
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("run %d executed under a cancelled context", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("run %d err = %v, want context.Canceled", i, r.Err)
		}
		if r.Attempts != 1 {
			t.Fatalf("run %d burned %d attempts on a cancelled campaign", i, r.Attempts)
		}
	}

	// Mid-run cancellation: wedge the engine, cancel shortly after, and
	// expect an interrupt attributed to the campaign, not retried.
	var c Campaign
	c.Add(Run{Protocol: "Greedy", Opts: quickOpts(1), Setup: func(sc *scenario.Scenario) {
		eng := sc.World.Engine()
		var spin func()
		spin = func() { eng.After(0, spin) }
		eng.After(0, spin)
	}})
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel2()
	}()
	results = Pool{Workers: 1, Retries: 3}.ExecuteContext(ctx2, c)
	if !errors.Is(results[0].Err, sim.ErrInterrupted) {
		t.Fatalf("err = %v, want wrapped sim.ErrInterrupted", results[0].Err)
	}
	if results[0].Attempts != 1 {
		t.Fatalf("cancelled run was retried %d times", results[0].Attempts-1)
	}
}
