package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/vanetlab/relroute/internal/digest"
	"github.com/vanetlab/relroute/internal/metrics"
)

// journalVersion is the manifest schema version; OpenJournal rejects
// files written by an incompatible schema.
const journalVersion = 1

// journalHeader is the first line of a manifest: it pins the campaign the
// journal belongs to, so a resume against a different run list is refused
// instead of silently mixing results.
type journalHeader struct {
	Kind     string `json:"kind"`
	Version  int    `json:"version"`
	Campaign uint64 `json:"campaign"`
	Runs     int    `json:"runs"`
}

// journalRecord is one completed run: its submission index, display
// label, attempt count, and full summary — everything ExecuteResumable
// needs to reproduce the Result without re-executing.
type journalRecord struct {
	Kind     string          `json:"kind"`
	Index    int             `json:"index"`
	Label    string          `json:"label"`
	Attempts int             `json:"attempts"`
	Summary  metrics.Summary `json:"summary"`
}

// CampaignHash fingerprints a campaign's run list: protocol, label, and
// the JSON encoding of each run's Options with the identity-irrelevant
// fields zeroed (Shards is an execution knob, not part of what a run
// computes; Channel is not serializable and campaigns that inject one
// must keep it consistent themselves). Setup hooks cannot be hashed —
// callers resuming a campaign with hooks are responsible for passing the
// same hooks again.
func CampaignHash(c Campaign) uint64 {
	var buf []byte
	for _, r := range c.Runs {
		o := r.Opts
		o.Shards = 0
		o.Channel = nil
		js, err := json.Marshal(o)
		if err != nil {
			// Options is a plain data struct; this only fires if a future
			// field breaks that. Degrade to the fields that do encode.
			js = []byte(err.Error())
		}
		buf = append(buf, r.Protocol...)
		buf = append(buf, 0)
		buf = append(buf, r.Label...)
		buf = append(buf, 0)
		buf = append(buf, js...)
		buf = append(buf, 0)
	}
	return digest.Sum64(buf)
}

// Journal is a durable campaign manifest: an append-only JSONL file whose
// first line identifies the campaign and whose subsequent lines each
// record one completed run. Every record is flushed and fsynced before
// the worker that produced it moves on, so after a crash or Ctrl-C the
// manifest names exactly the runs whose results are safe to reuse.
// Failed runs are never recorded — a resume retries them.
//
// Journal is safe for concurrent use by the pool's workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[int]journalRecord
	err  error
}

// OpenJournal opens (or creates) the manifest at path for the given
// campaign. An existing file must carry the same campaign fingerprint
// and run count — a mismatch is an error, not a silent restart — and its
// completed records are loaded for ExecuteResumable to skip. A partially
// written trailing line (torn by a crash mid-append) is ignored.
func OpenJournal(path string, c Campaign) (*Journal, error) {
	hash := CampaignHash(c)
	j := &Journal{done: make(map[int]journalRecord)}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := j.load(raw, hash, len(c.Runs), path); err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		// fresh manifest
	default:
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	j.f = f
	if len(raw) == 0 {
		hdr, _ := json.Marshal(journalHeader{Kind: "campaign", Version: journalVersion, Campaign: hash, Runs: len(c.Runs)})
		if err := j.append(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load parses an existing manifest and validates it against the campaign.
func (j *Journal) load(raw []byte, hash uint64, runs int, path string) error {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Kind != "campaign" {
				return fmt.Errorf("runner: %s is not a campaign journal", path)
			}
			if hdr.Version != journalVersion {
				return fmt.Errorf("runner: journal %s has version %d, this build reads %d", path, hdr.Version, journalVersion)
			}
			if hdr.Campaign != hash || hdr.Runs != runs {
				return fmt.Errorf("runner: journal %s records a different campaign (fingerprint %#x over %d runs, want %#x over %d)",
					path, hdr.Campaign, hdr.Runs, hash, runs)
			}
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn trailing line from a crash mid-append
		}
		if rec.Kind == "done" && rec.Index >= 0 && rec.Index < runs {
			j.done[rec.Index] = rec
		}
	}
	if first {
		return fmt.Errorf("runner: %s is not a campaign journal", path)
	}
	return nil
}

// Completed reports whether run i is already recorded, reconstructing its
// Result (with only Run.Label populated inside Run) when it is.
func (j *Journal) Completed(i int) (Result, bool) {
	j.mu.Lock()
	rec, ok := j.done[i]
	j.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	return Result{
		Run:      Run{Label: rec.Label},
		Summary:  rec.Summary,
		Attempts: rec.Attempts,
	}, true
}

// Remaining counts the runs a campaign of n still has to execute.
func (j *Journal) Remaining(n int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return n - len(j.done)
}

// Record appends run i's successful result and syncs the file. Write
// errors are sticky and surfaced by Close — a journaling failure must not
// fail the run that produced the result.
func (j *Journal) Record(i int, res Result) {
	line, err := json.Marshal(journalRecord{
		Kind:     "done",
		Index:    i,
		Label:    res.Run.Label,
		Attempts: res.Attempts,
		Summary:  res.Summary,
	})
	if err != nil {
		j.mu.Lock()
		if j.err == nil {
			j.err = fmt.Errorf("runner: journal encode: %w", err)
		}
		j.mu.Unlock()
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done[i] = journalRecord{Kind: "done", Index: i, Label: res.Run.Label, Attempts: res.Attempts, Summary: res.Summary}
	if err := j.appendLocked(line); err != nil && j.err == nil {
		j.err = err
	}
}

func (j *Journal) append(line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(line)
}

func (j *Journal) appendLocked(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: journal sync: %w", err)
	}
	return nil
}

// Close closes the manifest and returns the first write error, if any.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.err
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}
