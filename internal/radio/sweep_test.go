package radio

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/spatial"
)

// referenceLinks is an independent reimplementation of the pre-sweep lazy
// rebuild — Grid.Within into a scratch slice, then per-candidate distance
// and path loss — so the property test cannot share a bug with either
// production path.
func referenceLinks(grid *spatial.Grid, model channel.Model, id int32) []Link {
	pos, ok := grid.Position(id)
	if !ok {
		return nil
	}
	pre, _ := model.(channel.Precomputed)
	var links []Link
	for _, rx := range grid.Within(pos, model.MaxRange(), nil) {
		if rx == id {
			continue
		}
		rxPos, _ := grid.Position(rx)
		d := rxPos.Dist(pos)
		lk := Link{To: rx, Dist: d}
		if pre != nil {
			lk.Loss = pre.PathLoss(d)
		}
		links = append(links, lk)
	}
	return links
}

// TestSweepPropertyRandomChurn is the sweep's property test: random worlds
// under churn (moves, joins) and faults (removals — a failed node leaves
// the grid exactly like a crashed one does), swept at several shard
// counts, must yield for EVERY node — present or departed — links deeply
// equal (order, To, Dist, Loss) to the reference per-node Within rebuild,
// epoch after epoch.
func TestSweepPropertyRandomChurn(t *testing.T) {
	models := map[string]channel.Model{
		"unitdisk":  channel.UnitDisk{Range: 220},
		"shadowing": channel.NewShadowing(prob.DefaultReceiptModel()),
	}
	for name, model := range models {
		for _, shards := range []int{1, 2, 4} {
			pool := par.New(shards)
			for trial := 0; trial < 4; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*shards + trial)))
				grid := spatial.NewGrid(model.MaxRange())
				c := NewCache(grid, model)
				n := 40 + rng.Intn(120)
				span := 800 + rng.Float64()*2400
				alive := make(map[int32]bool, n)
				for id := int32(0); id < int32(n); id++ {
					grid.Update(id, geom.V(rng.Float64()*span, rng.Float64()*span))
					alive[id] = true
				}
				for epoch := 0; epoch < 6; epoch++ {
					c.RebuildSweep(pool)
					for id := int32(0); id < int32(n); id++ {
						want := referenceLinks(grid, model, id)
						got := c.Links(id)
						if len(got) != len(want) {
							t.Fatalf("%s shards=%d trial %d epoch %d node %d: %d links, want %d (alive=%v)",
								name, shards, trial, epoch, id, len(got), len(want), alive[id])
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s shards=%d trial %d epoch %d node %d link %d: %+v, want %+v",
									name, shards, trial, epoch, id, i, got[i], want[i])
							}
						}
					}
					// churn: move half the population, fault a couple of
					// nodes, revive a couple of faulted ones
					for id := int32(0); id < int32(n); id++ {
						switch rng.Intn(6) {
						case 0, 1, 2:
							grid.Update(id, geom.V(rng.Float64()*span, rng.Float64()*span))
							alive[id] = true
						case 3:
							grid.Remove(id)
							alive[id] = false
						}
					}
				}
			}
			pool.Close()
		}
	}
}

// TestSweepColdVsWarmIdentical pins cold-cache re-derivation (the
// checkpoint-restore path): a fresh cache sweeping the same grid state
// must produce hoods identical to a long-lived cache that has swept many
// epochs — warmed arena capacities must never leak into link content.
func TestSweepColdVsWarmIdentical(t *testing.T) {
	model := channel.UnitDisk{Range: 250}
	grid := spatial.NewGrid(250)
	warm := NewCache(grid, model)
	pool := par.New(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(99))
	for id := int32(0); id < 90; id++ {
		grid.Update(id, geom.V(rng.Float64()*2500, rng.Float64()*600))
	}
	for epoch := 0; epoch < 5; epoch++ {
		warm.RebuildSweep(pool)
		for id := int32(0); id < 90; id++ {
			if id%4 == 0 {
				grid.Update(id, geom.V(rng.Float64()*2500, rng.Float64()*600))
			}
		}
	}
	warm.RebuildSweep(pool)
	cold := NewCache(grid, model)
	cold.RebuildSweep(par.Seq)
	for id := int32(0); id < 90; id++ {
		want, got := warm.Links(id), cold.Links(id)
		if len(want) != len(got) {
			t.Fatalf("node %d: cold sweep %d links, warm %d", id, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("node %d link %d: cold %+v, warm %+v", id, i, got[i], want[i])
			}
		}
	}
}
