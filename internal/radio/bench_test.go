package radio

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/spatial"
)

// BenchmarkLinksHit measures the per-frame fast path: a cached
// neighborhood query with no grid change since the last build.
func BenchmarkLinksHit(b *testing.B) {
	_, c := warmCache(channel.UnitDisk{Range: 250})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Links(int32(n % 64))
	}
}

// BenchmarkLinksRebuild measures the once-per-epoch slow path: every
// iteration moves a node and rebuilds one neighborhood (64 nodes, ~16
// receivers each under shadowing path-loss precomputation).
func BenchmarkLinksRebuild(b *testing.B) {
	model := channel.NewShadowing(prob.DefaultReceiptModel())
	grid, c := warmCache(model)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		grid.Update(0, geom.V(float64(n%100), 0))
		c.Links(32)
	}
}

// sweepBenchWorld is a 512-node highway cloud dense enough that every
// node has a few dozen neighbors — the regime where full-population
// rebuild cost is decided.
func sweepBenchWorld(model channel.Model) (*spatial.Grid, *Cache) {
	grid := spatial.NewGrid(model.MaxRange())
	rng := rand.New(rand.NewSource(5))
	for id := int32(0); id < 512; id++ {
		grid.Update(id, geom.V(rng.Float64()*4000, rng.Float64()*500))
	}
	return grid, NewCache(grid, model)
}

// BenchmarkRebuildSweep measures rebuilding EVERY neighborhood via the
// symmetric cell-pair sweep: each unordered pair's distance and path loss
// computed once, written to both endpoints.
func BenchmarkRebuildSweep(b *testing.B) {
	model := channel.NewShadowing(prob.DefaultReceiptModel())
	grid, c := sweepBenchWorld(model)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		grid.Update(0, geom.V(float64(n%100), 0))
		c.RebuildSweep(par.Seq)
	}
}

// BenchmarkRebuildAllLazy is the same full-population rebuild through the
// per-transmitter lazy path — every pair visited from both ends. The gap
// to BenchmarkRebuildSweep is the sweep's halved pair math.
func BenchmarkRebuildAllLazy(b *testing.B) {
	model := channel.NewShadowing(prob.DefaultReceiptModel())
	grid, c := sweepBenchWorld(model)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		grid.Update(0, geom.V(float64(n%100), 0))
		for id := int32(0); id < 512; id++ {
			c.Links(id)
		}
	}
}
