package radio

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/prob"
)

// BenchmarkLinksHit measures the per-frame fast path: a cached
// neighborhood query with no grid change since the last build.
func BenchmarkLinksHit(b *testing.B) {
	_, c := warmCache(channel.UnitDisk{Range: 250})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Links(int32(n % 64))
	}
}

// BenchmarkLinksRebuild measures the once-per-epoch slow path: every
// iteration moves a node and rebuilds one neighborhood (64 nodes, ~16
// receivers each under shadowing path-loss precomputation).
func BenchmarkLinksRebuild(b *testing.B) {
	model := channel.NewShadowing(prob.DefaultReceiptModel())
	grid, c := warmCache(model)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		grid.Update(0, geom.V(float64(n%100), 0))
		c.Links(32)
	}
}
