package radio

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/spatial"
)

// TestLinksMatchesGridWithin pins the determinism contract: the cached
// neighborhood must list exactly the receivers a fresh grid scan returns,
// in the same order, with distances computed by the same expression.
func TestLinksMatchesGridWithin(t *testing.T) {
	grid := spatial.NewGrid(250)
	model := channel.UnitDisk{Range: 250}
	c := NewCache(grid, model)
	rng := rand.New(rand.NewSource(7))
	for id := int32(0); id < 60; id++ {
		grid.Update(id, geom.V(rng.Float64()*2000, rng.Float64()*40))
	}
	for id := int32(0); id < 60; id++ {
		links := c.Links(id)
		pos, _ := grid.Position(id)
		want := grid.Within(pos, model.MaxRange(), nil)
		j := 0
		for _, rx := range want {
			if rx == id {
				continue
			}
			if j >= len(links) {
				t.Fatalf("node %d: cache has %d links, grid scan found more (next %d)", id, len(links), rx)
			}
			lk := links[j]
			if lk.To != rx {
				t.Fatalf("node %d link %d: cached receiver %d, grid scan order says %d", id, j, lk.To, rx)
			}
			rxPos, _ := grid.Position(rx)
			if d := rxPos.Dist(pos); lk.Dist != d {
				t.Fatalf("node %d→%d: cached dist %v != %v", id, rx, lk.Dist, d)
			}
			j++
		}
		if j != len(links) {
			t.Fatalf("node %d: cache has %d extra links", id, len(links)-j)
		}
	}
}

// TestEpochInvalidation moves a vehicle across a cell boundary and asserts
// the cache refreshes: the mover's own list and its old/new neighbors'
// lists all reflect the new geometry.
func TestEpochInvalidation(t *testing.T) {
	grid := spatial.NewGrid(250)
	c := NewCache(grid, channel.UnitDisk{Range: 250})
	grid.Update(0, geom.V(100, 0))
	grid.Update(1, geom.V(200, 0))  // neighbor of 0 before the move
	grid.Update(2, geom.V(1200, 0)) // far away until 0 moves next to it

	has := func(links []Link, id int32) bool {
		for _, lk := range links {
			if lk.To == id {
				return true
			}
		}
		return false
	}
	if l := c.Links(0); !has(l, 1) || has(l, 2) {
		t.Fatalf("before move: links(0) = %v", l)
	}
	if l := c.Links(2); has(l, 0) {
		t.Fatalf("before move: links(2) = %v", l)
	}
	builds := c.Builds()

	// cross several cell boundaries: 100 → 1100
	grid.Update(0, geom.V(1100, 0))
	if l := c.Links(0); has(l, 1) || !has(l, 2) {
		t.Fatalf("after move: links(0) = %v, want only node 2", l)
	}
	if l := c.Links(2); !has(l, 0) {
		t.Fatal("after move: node 2 does not see node 0")
	}
	if l := c.Links(1); has(l, 0) {
		t.Fatal("after move: node 1 still sees node 0")
	}
	if c.Builds() == builds {
		t.Fatal("move did not trigger any rebuild")
	}

	// a same-cell move must also refresh distances
	grid.Update(0, geom.V(1150, 0))
	l := c.Links(2)
	if !has(l, 0) {
		t.Fatal("same-cell move lost the link")
	}
	for _, lk := range l {
		if lk.To == 0 && lk.Dist != 50 {
			t.Fatalf("same-cell move: cached dist %v, want 50", lk.Dist)
		}
	}
}

// TestLinksAmortized: repeated queries in one epoch pay for one rebuild.
func TestLinksAmortized(t *testing.T) {
	grid := spatial.NewGrid(250)
	c := NewCache(grid, channel.UnitDisk{Range: 250})
	for id := int32(0); id < 10; id++ {
		grid.Update(id, geom.V(float64(id)*50, 0))
	}
	for i := 0; i < 100; i++ {
		c.Links(3)
	}
	if c.Builds() != 1 {
		t.Fatalf("100 same-epoch queries cost %d rebuilds, want 1", c.Builds())
	}
	grid.Update(0, geom.V(10, 0)) // epoch bump
	c.Links(3)
	if c.Builds() != 2 {
		t.Fatalf("post-move query cost %d rebuilds, want 2", c.Builds())
	}
}

// TestRemovedNodeLeavesNeighborhoods: a node removed from the grid (left
// the simulation, failure injection) must disappear from every cached
// neighborhood before the next transmission — it must never be handed a
// reception at a stale or zero position.
func TestRemovedNodeLeavesNeighborhoods(t *testing.T) {
	grid := spatial.NewGrid(250)
	c := NewCache(grid, channel.UnitDisk{Range: 250})
	grid.Update(0, geom.V(0, 0))
	grid.Update(1, geom.V(100, 0))
	if len(c.Links(0)) != 1 {
		t.Fatalf("links(0) = %v, want node 1", c.Links(0))
	}
	grid.Remove(1)
	if l := c.Links(0); len(l) != 0 {
		t.Fatalf("links(0) after removal = %v, want empty", l)
	}
	// and a transmitter the grid does not track has no receivers at all
	if l := c.Links(1); len(l) != 0 {
		t.Fatalf("links of removed node = %v, want empty", l)
	}
}

// TestDecodableMatchesModel pins the split-API contract end to end: for
// both channel models, deciding a cached link must consume exactly the
// same RNG draws and give exactly the same verdicts as the un-split
// Decodable path.
func TestDecodableMatchesModel(t *testing.T) {
	models := map[string]channel.Model{
		"unitdisk":  channel.UnitDisk{Range: 250},
		"shadowing": channel.NewShadowing(prob.DefaultReceiptModel()),
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			grid := spatial.NewGrid(model.MaxRange())
			c := NewCache(grid, model)
			posRng := rand.New(rand.NewSource(11))
			for id := int32(0); id < 40; id++ {
				grid.Update(id, geom.V(posRng.Float64()*1500, 0))
			}
			rngA := rand.New(rand.NewSource(99))
			rngB := rand.New(rand.NewSource(99))
			for id := int32(0); id < 40; id++ {
				for _, lk := range c.Links(id) {
					got := c.Decodable(lk, rngA)
					want := model.Decodable(lk.Dist, rngB)
					if got != want {
						t.Fatalf("link %d→%d (d=%v): cached verdict %v, model says %v", id, lk.To, lk.Dist, got, want)
					}
				}
			}
			// equal residual streams prove equal draw consumption
			for i := 0; i < 8; i++ {
				if a, b := rngA.Float64(), rngB.Float64(); a != b {
					t.Fatalf("RNG streams diverged after deciding links: %v != %v", a, b)
				}
			}
		})
	}
}
