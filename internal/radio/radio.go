// Package radio caches per-mobility-epoch link state between the spatial
// index and the channel model: for every transmitter, the candidate
// receiver list with precomputed distances and the deterministic part of
// the channel's link budget at those distances.
//
// The MAC's transmit path used to be O(candidates) grid-scan + path-loss
// math per frame; with beacon storms every node transmits every interval,
// making that the dominant cost at city density. Positions only change at
// mobility-tick boundaries (plus node join/leave), so all of it is a pure
// function of the grid's epoch. The cache memoizes a node's neighborhood
// the first time it transmits in an epoch and reuses it — one comparison
// against spatial.Grid.Epoch — for every subsequent frame until the world
// moves again. Large-scale VANET simulators (ns-3, Veins) amortize their
// O(n²) transmit paths the same way.
//
// Determinism contract: Links lists candidates in exactly the order
// spatial.Grid.Within returns them, with distances computed by the same
// expression the uncached MAC used, and channel.Precomputed guarantees
// DecodableAt(PathLoss(d)) consumes the same RNG draws as Decodable(d).
// A cached transmit is therefore byte-identical to an uncached one — the
// golden-file tests pin this.
//
// The cache is shared: the netstack world owns invalidation (its mobility
// step's grid updates advance the epoch; join/leave and failure injection
// advance it incrementally), the MAC consumes Links for every frame, and
// beaconing rides the same cached neighborhoods since beacons are ordinary
// MAC broadcasts.
package radio

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Link is one cached candidate receiver of a node's transmissions.
type Link struct {
	To   int32   // receiver node ID
	Dist float64 // meters at the epoch the neighborhood was built
	Loss float64 // channel.Precomputed.PathLoss(Dist); unset for plain Models
}

// Cache memoizes candidate receiver lists per transmitter. It is built
// over a Grid and a channel Model once per world; the zero value is not
// usable. Not safe for concurrent use — like every per-world structure,
// it belongs to the single-threaded simulation engine.
type Cache struct {
	grid    *spatial.Grid
	model   channel.Model
	pre     channel.Precomputed // non-nil when model supports the split API
	hoods   []hood              // dense, keyed by node ID
	scratch []int32             // reused Within result buffer
	builds  uint64              // rebuild counter (instrumentation/tests)
}

// hood is one node's cached neighborhood. epoch 0 means never built
// (grid epochs are 1-based).
type hood struct {
	links []Link
	epoch uint64
}

// NewCache returns a cache over the given index and propagation model.
func NewCache(grid *spatial.Grid, model channel.Model) *Cache {
	c := &Cache{grid: grid, model: model}
	if pre, ok := model.(channel.Precomputed); ok {
		c.pre = pre
	}
	return c
}

// Links returns the candidate receiver list for a transmission from id,
// rebuilding it only if the grid changed since it was last built. A node
// the grid does not track (left, failed, never joined) gets an empty list.
// The returned slice is owned by the cache: it is valid until the next
// Links call for the same id after a grid change, and must not be retained
// or mutated.
func (c *Cache) Links(id int32) []Link {
	if id < 0 {
		return nil
	}
	for int(id) >= len(c.hoods) {
		c.hoods = append(c.hoods, hood{})
	}
	h := &c.hoods[id]
	if e := c.grid.Epoch(); h.epoch != e {
		c.rebuild(id, h)
		h.epoch = e
	}
	return h.links
}

// rebuild recomputes one node's neighborhood from the grid, reusing the
// backing arrays so steady-state rebuilds do not allocate.
func (c *Cache) rebuild(id int32, h *hood) {
	c.builds++
	h.links = h.links[:0]
	pos, ok := c.grid.Position(id)
	if !ok {
		return
	}
	c.scratch = c.grid.Within(pos, c.model.MaxRange(), c.scratch[:0])
	for _, rx := range c.scratch {
		if rx == id {
			continue
		}
		rxPos, ok := c.grid.Position(rx)
		if !ok {
			// A receiver the grid no longer tracks must be skipped, never
			// given a reception at a stale or zero position.
			continue
		}
		d := rxPos.Dist(pos)
		lk := Link{To: rx, Dist: d}
		if c.pre != nil {
			lk.Loss = c.pre.PathLoss(d)
		}
		h.links = append(h.links, lk)
	}
}

// Decodable draws the stochastic part of the reception decision for a
// cached link, consuming exactly the RNG draws Model.Decodable would for
// the same distance.
func (c *Cache) Decodable(lk Link, rng *rand.Rand) bool {
	if c.pre != nil {
		return c.pre.DecodableAt(lk.Loss, rng)
	}
	return c.model.Decodable(lk.Dist, rng)
}

// Builds returns how many neighborhood rebuilds have run — the number of
// (node, epoch) pairs actually paid for, which tests compare against the
// transmission count to prove amortization.
func (c *Cache) Builds() uint64 { return c.builds }

// Model returns the propagation model the cache decides receptions with.
func (c *Cache) Model() channel.Model { return c.model }
