// Package radio caches per-mobility-epoch link state between the spatial
// index and the channel model: for every transmitter, the candidate
// receiver list with precomputed distances and the deterministic part of
// the channel's link budget at those distances.
//
// The MAC's transmit path used to be O(candidates) grid-scan + path-loss
// math per frame; with beacon storms every node transmits every interval,
// making that the dominant cost at city density. Positions only change at
// mobility-tick boundaries (plus node join/leave), so all of it is a pure
// function of the grid's epoch. The cache memoizes a node's neighborhood
// the first time it transmits in an epoch and reuses it — one comparison
// against spatial.Grid.Epoch — for every subsequent frame until the world
// moves again. Large-scale VANET simulators (ns-3, Veins) amortize their
// O(n²) transmit paths the same way.
//
// Determinism contract: Links lists candidates in exactly the order
// spatial.Grid.Within returns them, with distances computed by the same
// expression the uncached MAC used, and channel.Precomputed guarantees
// DecodableAt(PathLoss(d)) consumes the same RNG draws as Decodable(d).
// A cached transmit is therefore byte-identical to an uncached one — the
// golden-file tests pin this.
//
// The cache is shared: the netstack world owns invalidation (its mobility
// step's grid updates advance the epoch; join/leave and failure injection
// advance it incrementally), the MAC consumes Links for every frame, and
// beaconing rides the same cached neighborhoods since beacons are ordinary
// MAC broadcasts.
//
// Checkpoint contract: the cache is pure memoization — every entry is a
// function of the grid epoch and node positions, and which entries are
// populated can differ by shard count (the sharded engine prefetches
// eagerly). It is therefore excluded from the world's state digest and
// never serialized; a restored world starts with a cold cache and
// repopulates it on first transmit, byte-identically.
package radio

import (
	"math/rand"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Link is one cached candidate receiver of a node's transmissions.
type Link struct {
	To   int32   // receiver node ID
	Dist float64 // meters at the epoch the neighborhood was built
	Loss float64 // channel.Precomputed.PathLoss(Dist); unset for plain Models
}

// Cache memoizes candidate receiver lists per transmitter. It is built
// over a Grid and a channel Model once per world; the zero value is not
// usable. Not safe for concurrent use — like every per-world structure,
// it belongs to the single-threaded simulation engine.
type Cache struct {
	grid    *spatial.Grid
	model   channel.Model
	pre     channel.Precomputed // non-nil when model supports the split API
	hoods   []hood              // dense, keyed by node ID
	scratch []int32             // reused Within result buffer
	builds  uint64              // rebuild counter (instrumentation/tests)

	// usage accounting for the sharded eager-rebuild heuristic: how many
	// distinct transmitters requested their neighborhood during the
	// current and the previous grid epoch. Requests ride the serial
	// transmit path, so the counts are deterministic.
	reqEpoch uint64
	reqCount int
	prevReq  int

	// per-shard arenas for RebuildAll: each shard gets its own Within
	// scratch buffer and build counter so the fan-out shares nothing but
	// the (read-only) grid and the disjoint hood slots it owns.
	shardScratch [][]int32
	shardBuilds  []uint64
}

// hood is one node's cached neighborhood. epoch 0 means never built
// (grid epochs are 1-based); req is the last epoch the node requested it
// (usage accounting, distinct from having it built eagerly).
type hood struct {
	links []Link
	epoch uint64
	req   uint64
}

// NewCache returns a cache over the given index and propagation model.
func NewCache(grid *spatial.Grid, model channel.Model) *Cache {
	c := &Cache{grid: grid, model: model}
	if pre, ok := model.(channel.Precomputed); ok {
		c.pre = pre
	}
	return c
}

// Links returns the candidate receiver list for a transmission from id,
// rebuilding it only if the grid changed since it was last built. A node
// the grid does not track (left, failed, never joined) gets an empty list.
// The returned slice is owned by the cache: it is valid until the next
// Links call for the same id after a grid change, and must not be retained
// or mutated.
func (c *Cache) Links(id int32) []Link {
	if id < 0 {
		return nil
	}
	for int(id) >= len(c.hoods) {
		c.hoods = append(c.hoods, hood{})
	}
	h := &c.hoods[id]
	e := c.grid.Epoch()
	if h.req != e {
		if e != c.reqEpoch {
			c.prevReq, c.reqCount, c.reqEpoch = c.reqCount, 0, e
		}
		h.req = e
		c.reqCount++
	}
	if h.epoch != e {
		c.builds++
		c.rebuildInto(id, h, &c.scratch)
		h.epoch = e
	}
	return h.links
}

// rebuildInto recomputes one node's neighborhood from the grid into the
// given Within scratch buffer, reusing the backing arrays so steady-state
// rebuilds do not allocate. It only reads the grid and writes h and
// scratch, which is what lets RebuildAll run it per shard.
func (c *Cache) rebuildInto(id int32, h *hood, scratch *[]int32) {
	h.links = h.links[:0]
	pos, ok := c.grid.Position(id)
	if !ok {
		return
	}
	*scratch = c.grid.Within(pos, c.model.MaxRange(), (*scratch)[:0])
	for _, rx := range *scratch {
		if rx == id {
			continue
		}
		rxPos, ok := c.grid.Position(rx)
		if !ok {
			// A receiver the grid no longer tracks must be skipped, never
			// given a reception at a stale or zero position.
			continue
		}
		d := rxPos.Dist(pos)
		lk := Link{To: rx, Dist: d}
		if c.pre != nil {
			lk.Loss = c.pre.PathLoss(d)
		}
		h.links = append(h.links, lk)
	}
}

// PrevEpochUse returns how many distinct transmitters requested their
// neighborhood during the previous grid epoch — the demand signal the
// world's eager-rebuild heuristic weighs against the cost of prefetching
// every active node's neighborhood.
func (c *Cache) PrevEpochUse() int { return c.prevReq }

// RebuildAll eagerly rebuilds the neighborhoods of the given ids for the
// current epoch, fanning the per-transmitter work out over the pool into
// per-shard scratch arenas. It is a pure prefetch: each neighborhood is
// the exact list the lazy path would build on first use (rebuildInto is a
// pure function of the grid), so transmissions — and with them every
// golden output — are unaffected; only the wall-clock place the rebuild
// cost is paid moves, from the serial transmit path onto the shards. IDs
// already fresh for the epoch are skipped; duplicate ids must not be
// passed (two shards would race on one hood).
func (c *Cache) RebuildAll(pool *par.Pool, ids []int32) {
	n := pool.Shards()
	var maxID int32 = -1
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	for int(maxID) >= len(c.hoods) {
		c.hoods = append(c.hoods, hood{})
	}
	for len(c.shardScratch) < n {
		c.shardScratch = append(c.shardScratch, nil)
		c.shardBuilds = append(c.shardBuilds, 0)
	}
	e := c.grid.Epoch()
	pool.Run(func(shard int) {
		lo, hi := pool.Range(len(ids), shard)
		var builds uint64
		for _, id := range ids[lo:hi] {
			h := &c.hoods[id]
			if h.epoch == e {
				continue
			}
			c.rebuildInto(id, h, &c.shardScratch[shard])
			h.epoch = e
			builds++
		}
		c.shardBuilds[shard] = builds
	})
	for _, b := range c.shardBuilds[:n] {
		c.builds += b
	}
}

// Decodable draws the stochastic part of the reception decision for a
// cached link, consuming exactly the RNG draws Model.Decodable would for
// the same distance.
func (c *Cache) Decodable(lk Link, rng *rand.Rand) bool {
	if c.pre != nil {
		return c.pre.DecodableAt(lk.Loss, rng)
	}
	return c.model.Decodable(lk.Dist, rng)
}

// Builds returns how many neighborhood rebuilds have run — the number of
// (node, epoch) pairs actually paid for, which tests compare against the
// transmission count to prove amortization.
func (c *Cache) Builds() uint64 { return c.builds }

// Model returns the propagation model the cache decides receptions with.
func (c *Cache) Model() channel.Model { return c.model }
