// Package radio caches per-mobility-epoch link state between the spatial
// index and the channel model: for every transmitter, the candidate
// receiver list with precomputed distances and the deterministic part of
// the channel's link budget at those distances.
//
// The MAC's transmit path used to be O(candidates) grid-scan + path-loss
// math per frame; with beacon storms every node transmits every interval,
// making that the dominant cost at city density. Positions only change at
// mobility-tick boundaries (plus node join/leave), so all of it is a pure
// function of the grid's epoch. The cache memoizes neighborhoods per epoch
// and reuses them — one comparison against spatial.Grid.Epoch — for every
// subsequent frame until the world moves again.
//
// Two build paths fill the same hoods:
//
//   - Lazy (Links): one node's neighborhood on first use in an epoch, by
//     walking the grid's 3×3 cell stencil around the transmitter. Right
//     when only a sparse subset of the population transmits per epoch —
//     flooding bursts, idle worlds — because untransmitting nodes never
//     pay anything.
//
//   - Eager sweep (RebuildSweep): every neighborhood in one symmetric pass
//     over the grid's CSR snapshot (spatial.Snapshot — occupied cells
//     sorted by (CX, CY), members packed contiguously). The sweep
//     enumerates each unordered in-range cell pair once, computes each
//     in-range pair's distance and path loss once, and writes the link
//     into both endpoints' hoods — half the pair math of n per-node
//     stencil walks, over contiguous arrays instead of per-cell map
//     probes, with the link budget evaluated through the channel's batch
//     API (channel.BatchPrecomputed) instead of an interface call per
//     pair. Pair discovery shards over cell stripes through par.Pool; a
//     serial scatter then fills the hoods. Right when most of the
//     population transmits every epoch — beaconing protocols at any
//     density. The world picks per epoch via SweepWorthwhile.
//
// Order reconstruction: Links must list candidates in exactly the order
// spatial.Grid.Within returns them — ascending (cx, cy) cell rank, then
// cell list order — because golden outputs consume links in list order.
// A transmitter's stencil covers every in-range cell, so that order is the
// restriction of one global total order (CSR cell rank, then in-cell
// position) to the in-range subset, independent of the transmitter. The
// sweep exploits this: enumerating cell pairs (a, b) with a ≤ b in rank
// order — in-cell pairs i < j first, then forward cells by rank — and
// scattering per-shard pair buffers in shard order appends every link in
// exactly that global order, so each hood comes out byte-identical to a
// lazy build. Distances are bitwise symmetric (math.Hypot of negated
// differences), so one computation serves both directions.
//
// Determinism contract: both paths produce identical link lists, with
// distances computed by the same expression the uncached MAC used, and
// channel.Precomputed guarantees DecodableAt(PathLoss(d)) consumes the
// same RNG draws as Decodable(d). A cached transmit — lazy or swept — is
// therefore byte-identical to an uncached one at every shard count; the
// golden-file and sweep property tests pin this.
//
// The cache is shared: the netstack world owns invalidation (its mobility
// step's grid updates advance the epoch; join/leave and failure injection
// advance it incrementally), the MAC consumes Links for every frame, and
// beaconing rides the same cached neighborhoods since beacons are ordinary
// MAC broadcasts.
//
// Checkpoint contract: the cache is pure memoization — every entry is a
// function of the grid epoch and node positions, and which entries are
// populated can differ by shard count and build path. It is therefore
// excluded from the world's state digest and never serialized; a restored
// world starts with a cold cache and repopulates it on first transmit or
// first sweep, byte-identically.
package radio

import (
	"math"
	"math/rand"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Link is one cached candidate receiver of a node's transmissions.
type Link struct {
	To   int32   // receiver node ID
	Dist float64 // meters at the epoch the neighborhood was built
	Loss float64 // channel.Precomputed.PathLoss(Dist); unset for plain Models
}

// Cache memoizes candidate receiver lists per transmitter. It is built
// over a Grid and a channel Model once per world; the zero value is not
// usable. Not safe for concurrent use — like every per-world structure,
// it belongs to the single-threaded simulation engine (RebuildSweep fans
// out internally over disjoint state).
type Cache struct {
	grid   *spatial.Grid
	model  channel.Model
	pre    channel.Precomputed      // non-nil when model supports the split API
	batch  channel.BatchPrecomputed // non-nil when model supports bulk path loss
	hoods  []hood                   // dense, keyed by node ID
	builds uint64                   // rebuild counter (instrumentation/tests)

	// usage accounting for the eager-sweep heuristic: how many distinct
	// transmitters requested their neighborhood during the current and the
	// previous grid epoch. Requests ride the serial transmit path, so the
	// counts are deterministic.
	reqEpoch uint64
	reqCount int
	prevReq  int

	mode       EagerMode
	sweepEpoch uint64 // last epoch RebuildSweep ran; repeat sweeps are no-ops

	// sweep holds the per-shard pair arenas: each shard discovers pairs in
	// its own cell stripe into its own buffers, sharing nothing but the
	// read-only snapshot, and the serial scatter drains them in shard
	// order. Backing arrays persist across epochs so steady-state sweeps
	// do not allocate.
	sweep []sweepShard
}

// sweepShard is one shard's pair buffer: parallel arrays of endpoint node
// IDs, pair distance, and the batched link budget at that distance.
type sweepShard struct {
	a, b []int32
	d    []float64
	loss []float64
}

// hood is one node's cached neighborhood. epoch 0 means never built
// (grid epochs are 1-based); req is the last epoch the node requested it
// (usage accounting, distinct from having it built eagerly).
type hood struct {
	links []Link
	epoch uint64
	req   uint64
}

// EagerMode overrides the sweep-vs-lazy policy; see SetEagerMode.
type EagerMode int

const (
	// EagerAuto (the default) weighs previous-epoch demand against the
	// population size; see SweepWorthwhile.
	EagerAuto EagerMode = iota
	// EagerAlways sweeps every epoch regardless of demand.
	EagerAlways
	// EagerNever builds every neighborhood lazily.
	EagerNever
)

// NewCache returns a cache over the given index and propagation model.
func NewCache(grid *spatial.Grid, model channel.Model) *Cache {
	c := &Cache{grid: grid, model: model}
	if pre, ok := model.(channel.Precomputed); ok {
		c.pre = pre
	}
	if batch, ok := model.(channel.BatchPrecomputed); ok {
		c.batch = batch
	}
	return c
}

// SetEagerMode forces the sweep-vs-lazy decision. Both paths build
// identical neighborhoods, so the mode never changes simulation output —
// only where the rebuild cost is paid. Tests use it to drive full runs
// down one path; production worlds leave EagerAuto.
func (c *Cache) SetEagerMode(m EagerMode) { c.mode = m }

// Links returns the candidate receiver list for a transmission from id,
// rebuilding it only if the grid changed since it was last built. A node
// the grid does not track (left, failed, never joined) gets an empty list.
// The returned slice is owned by the cache: it is valid until the next
// Links call for the same id after a grid change, and must not be retained
// or mutated.
func (c *Cache) Links(id int32) []Link {
	if id < 0 {
		return nil
	}
	for int(id) >= len(c.hoods) {
		c.hoods = append(c.hoods, hood{})
	}
	h := &c.hoods[id]
	e := c.grid.Epoch()
	if h.req != e {
		if e != c.reqEpoch {
			c.prevReq, c.reqCount, c.reqEpoch = c.reqCount, 0, e
		}
		h.req = e
		c.reqCount++
	}
	if h.epoch != e {
		c.builds++
		c.rebuildInto(id, h)
		h.epoch = e
	}
	return h.links
}

// rebuildInto recomputes one node's neighborhood by walking the same cell
// stencil Grid.Within covers, in the same order, fused into a single pass:
// a counting sweep first sizes the link slice exactly (one allocation per
// growth instead of an append-doubling chain on every cold rebuild), then
// the fill sweep reads each candidate's position once.
func (c *Cache) rebuildInto(id int32, h *hood) {
	h.links = h.links[:0]
	pos, ok := c.grid.Position(id)
	if !ok {
		return
	}
	r := c.model.MaxRange()
	r2 := r * r
	minCX, minCY, maxCX, maxCY := c.grid.CellBounds(pos, r)
	total := 0
	for cx := minCX; cx <= maxCX; cx++ {
		for cy := minCY; cy <= maxCY; cy++ {
			total += len(c.grid.CellList(cx, cy))
		}
	}
	// total counts the transmitter itself and out-of-range candidates, so
	// total-1 is a tight upper bound on the neighborhood size.
	if total > 1 && cap(h.links) < total-1 {
		h.links = make([]Link, 0, total-1)
	}
	for cx := minCX; cx <= maxCX; cx++ {
		for cy := minCY; cy <= maxCY; cy++ {
			for _, rx := range c.grid.CellList(cx, cy) {
				if rx == id {
					continue
				}
				// Cell members are always indexed, so the unchecked read
				// is safe.
				rxPos := c.grid.At(rx)
				if rxPos.DistSq(pos) > r2 {
					continue
				}
				d := rxPos.Dist(pos)
				lk := Link{To: rx, Dist: d}
				if c.pre != nil {
					lk.Loss = c.pre.PathLoss(d)
				}
				h.links = append(h.links, lk)
			}
		}
	}
}

// PrevEpochUse returns how many distinct transmitters requested their
// neighborhood during the previous grid epoch — the demand signal the
// world's eager-sweep heuristic weighs against the cost of rebuilding
// every neighborhood at once.
func (c *Cache) PrevEpochUse() int { return c.prevReq }

// SweepWorthwhile reports whether the world should run RebuildSweep for
// the current epoch instead of letting neighborhoods build lazily, given
// the active population and the pool's shard count. The auto policy sweeps
// when the previous epoch's demand, amortized by the sweep's fan-out
// across shards, covers the population: demand·shards ≥ actives. Serially
// that means full saturation — every active transmitted last epoch — the
// one regime where halved pair math beats lazy even though demand is a
// one-epoch-stale predictor; bursty flooding and idle worlds stay lazy,
// where untransmitting nodes never pay anything. Sharded worlds engage
// earlier because pair discovery spreads over the pool while lazy
// rebuilds ride the serial event path.
func (c *Cache) SweepWorthwhile(actives, shards int) bool {
	switch c.mode {
	case EagerAlways:
		return actives > 0
	case EagerNever:
		return false
	}
	if actives == 0 {
		return false
	}
	if shards < 1 {
		shards = 1
	}
	return c.prevReq*shards >= actives
}

// RebuildSweep eagerly rebuilds every grid member's neighborhood for the
// current epoch in one symmetric pass over the CSR snapshot: each
// unordered pair of in-range cells is visited by exactly one shard (the
// one owning the lower-ranked cell), each in-range node pair's distance
// and link budget are computed once, and the serial scatter appends the
// link into both endpoints' hoods. Scattering the per-shard buffers in
// shard order replays the exact serial enumeration order, which in turn
// reproduces Grid.Within's candidate order in every hood (see the package
// comment), so the sweep is a pure prefetch: transmissions — and with
// them every golden output — are unaffected at any shard count. Nodes the
// grid does not track are left to the lazy path, which rebuilds them
// empty on first use.
func (c *Cache) RebuildSweep(pool *par.Pool) {
	e := c.grid.Epoch()
	if c.sweepEpoch == e {
		return // the epoch's geometry is already swept; hoods are fresh
	}
	snap := c.grid.Snapshot()
	if len(snap.IDs) == 0 {
		return
	}
	c.sweepEpoch = e
	maxID := int32(-1)
	for _, id := range snap.IDs {
		if id > maxID {
			maxID = id
		}
	}
	for int(maxID) >= len(c.hoods) {
		c.hoods = append(c.hoods, hood{})
	}
	for _, id := range snap.IDs {
		h := &c.hoods[id]
		h.links = h.links[:0]
		h.epoch = e
	}
	n := pool.Shards()
	for len(c.sweep) < n {
		c.sweep = append(c.sweep, sweepShard{})
	}
	r := c.model.MaxRange()
	r2 := r * r
	reach := int32(math.Ceil(r / c.grid.CellSize()))
	cells := snap.Cells
	pool.Run(func(shard int) {
		sh := &c.sweep[shard]
		sh.a, sh.b, sh.d = sh.a[:0], sh.b[:0], sh.d[:0]
		lo, hi := pool.Range(len(cells), shard)
		for ai := lo; ai < hi; ai++ {
			ca := cells[ai]
			// in-cell pairs, i < j in list order
			for i := ca.Start; i < ca.End; i++ {
				pi := snap.Pos[i]
				for j := i + 1; j < ca.End; j++ {
					if snap.Pos[j].DistSq(pi) <= r2 {
						sh.a = append(sh.a, snap.IDs[i])
						sh.b = append(sh.b, snap.IDs[j])
						sh.d = append(sh.d, snap.Pos[j].Dist(pi))
					}
				}
			}
			// forward cells in the same row: contiguous right after ai
			for bi := ai + 1; bi < len(cells) && cells[bi].CX == ca.CX && cells[bi].CY <= ca.CY+reach; bi++ {
				sh.pairCells(snap, ca, cells[bi], r2)
			}
			// forward rows: binary-search each row's window start
			for dcx := int32(1); dcx <= reach; dcx++ {
				for bi := snap.Search(ca.CX+dcx, ca.CY-reach); bi < len(cells) && cells[bi].CX == ca.CX+dcx && cells[bi].CY <= ca.CY+reach; bi++ {
					sh.pairCells(snap, ca, cells[bi], r2)
				}
			}
		}
		// link budget for the shard's pairs, batched when the model can
		if cap(sh.loss) < len(sh.d) {
			sh.loss = make([]float64, len(sh.d))
		}
		sh.loss = sh.loss[:len(sh.d)]
		switch {
		case c.batch != nil:
			c.batch.PathLossInto(sh.loss, sh.d)
		case c.pre != nil:
			for k, d := range sh.d {
				sh.loss[k] = c.pre.PathLoss(d)
			}
		default:
			clear(sh.loss)
		}
	})
	for s := 0; s < n; s++ {
		sh := &c.sweep[s]
		for k := range sh.a {
			i, j := sh.a[k], sh.b[k]
			d, ls := sh.d[k], sh.loss[k]
			hi := &c.hoods[i]
			hi.links = append(hi.links, Link{To: j, Dist: d, Loss: ls})
			hj := &c.hoods[j]
			hj.links = append(hj.links, Link{To: i, Dist: d, Loss: ls})
		}
	}
	c.builds += uint64(len(snap.IDs))
}

// pairCells emits every in-range pair between two distinct cells: outer
// loop over ca's members, inner over cb's, so each hood receives its
// contributions from the other cell in that cell's list order.
func (sh *sweepShard) pairCells(snap *spatial.Snapshot, ca, cb spatial.CellSpan, r2 float64) {
	for i := ca.Start; i < ca.End; i++ {
		pi := snap.Pos[i]
		for j := cb.Start; j < cb.End; j++ {
			if snap.Pos[j].DistSq(pi) <= r2 {
				sh.a = append(sh.a, snap.IDs[i])
				sh.b = append(sh.b, snap.IDs[j])
				sh.d = append(sh.d, snap.Pos[j].Dist(pi))
			}
		}
	}
}

// Decodable draws the stochastic part of the reception decision for a
// cached link, consuming exactly the RNG draws Model.Decodable would for
// the same distance.
func (c *Cache) Decodable(lk Link, rng *rand.Rand) bool {
	if c.pre != nil {
		return c.pre.DecodableAt(lk.Loss, rng)
	}
	return c.model.Decodable(lk.Dist, rng)
}

// Builds returns how many neighborhood rebuilds have run — the number of
// (node, epoch) pairs actually paid for, which tests compare against the
// transmission count to prove amortization.
func (c *Cache) Builds() uint64 { return c.builds }

// Model returns the propagation model the cache decides receptions with.
func (c *Cache) Model() channel.Model { return c.model }
