package radio

import (
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/spatial"
)

// Steady-state allocation pins: once a cache's backing arrays have grown
// to the working set, neither same-epoch queries nor post-move rebuilds
// may allocate — the cache sits on the per-frame transmit path.

func warmCache(model channel.Model) (*spatial.Grid, *Cache) {
	grid := spatial.NewGrid(model.MaxRange())
	c := NewCache(grid, model)
	for id := int32(0); id < 64; id++ {
		grid.Update(id, geom.V(float64(id)*30, 0))
	}
	for id := int32(0); id < 64; id++ {
		c.Links(id)
	}
	return grid, c
}

func TestQueryAllocFree(t *testing.T) {
	_, c := warmCache(channel.UnitDisk{Range: 250})
	allocs := testing.AllocsPerRun(200, func() {
		for id := int32(0); id < 64; id++ {
			c.Links(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("same-epoch Links allocated %v times per run, want 0", allocs)
	}
}

func TestRebuildAllocFree(t *testing.T) {
	for _, model := range []channel.Model{
		channel.UnitDisk{Range: 250},
		channel.NewShadowing(prob.DefaultReceiptModel()),
	} {
		grid, c := warmCache(model)
		x := 0.0
		// every iteration moves a node (advancing the grid epoch) and
		// rebuilds every neighborhood against the new geometry
		allocs := testing.AllocsPerRun(100, func() {
			x += 1
			grid.Update(0, geom.V(x, 0))
			for id := int32(0); id < 64; id++ {
				c.Links(id)
			}
		})
		if allocs != 0 {
			t.Fatalf("%T: post-move rebuild allocated %v times per run, want 0", model, allocs)
		}
	}
}
