package radio

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/spatial"
)

// shardWorld populates a grid with a random cloud and returns two caches
// over the SAME grid: one exercised lazily, one via RebuildAll.
func shardWorld(n int) (*spatial.Grid, *Cache, *Cache, []int32) {
	grid := spatial.NewGrid(250)
	model := channel.UnitDisk{Range: 250}
	lazy := NewCache(grid, model)
	eager := NewCache(grid, model)
	rng := rand.New(rand.NewSource(11))
	ids := make([]int32, n)
	for id := int32(0); id < int32(n); id++ {
		grid.Update(id, geom.V(rng.Float64()*3000, rng.Float64()*500))
		ids[id] = id
	}
	return grid, lazy, eager, ids
}

// TestRebuildAllMatchesLazy pins the prefetch contract: after RebuildAll,
// every neighborhood is exactly — same receivers, same order, same
// distances — what the lazy Links path computes on demand, across epochs
// and shard counts.
func TestRebuildAllMatchesLazy(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		grid, lazy, eager, ids := shardWorld(80)
		pool := par.New(shards)
		defer pool.Close()
		rng := rand.New(rand.NewSource(23))
		for epoch := 0; epoch < 5; epoch++ {
			eager.RebuildAll(pool, ids)
			for _, id := range ids {
				want := lazy.Links(id)
				got := eager.Links(id)
				if len(want) != len(got) {
					t.Fatalf("shards=%d epoch %d node %d: %d links, want %d", shards, epoch, id, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("shards=%d epoch %d node %d link %d: %+v, want %+v", shards, epoch, id, i, got[i], want[i])
					}
				}
			}
			// move a third of the nodes and advance the epoch
			for _, id := range ids {
				if id%3 == 0 {
					grid.Update(id, geom.V(rng.Float64()*3000, rng.Float64()*500))
				}
			}
		}
	}
}

// TestRebuildAllSkipsFreshAndCountsBuilds checks idempotence within an
// epoch: a second RebuildAll is a no-op (Builds does not move), and the
// build counter matches the population the first pass actually built.
func TestRebuildAllSkipsFreshAndCountsBuilds(t *testing.T) {
	_, _, eager, ids := shardWorld(60)
	pool := par.New(4)
	defer pool.Close()
	eager.RebuildAll(pool, ids)
	if got := eager.Builds(); got != 60 {
		t.Fatalf("first RebuildAll built %d hoods, want 60", got)
	}
	eager.RebuildAll(pool, ids)
	if got := eager.Builds(); got != 60 {
		t.Fatalf("second RebuildAll rebuilt fresh hoods: builds = %d, want 60", got)
	}
}

// TestRebuildAllSteadyStateAllocs pins the arena contract: once the
// per-shard scratch arenas and hood slices have warmed up, an eager
// rebuild's only allocation is the fork closure itself — nothing scales
// with the population. A vehicle toggling between two cells keeps the
// epoch turning over (so every hood really rebuilds each pass) without
// growing any neighborhood past its warmed capacity.
func TestRebuildAllSteadyStateAllocs(t *testing.T) {
	grid, _, eager, ids := shardWorld(100)
	pool := par.New(4)
	defer pool.Close()
	there, back := geom.V(2990, 10), geom.V(10, 490)
	tick := 0
	move := func() {
		tick++
		if tick%2 == 0 {
			grid.Update(0, there)
		} else {
			grid.Update(0, back)
		}
	}
	for i := 0; i < 4; i++ { // warm arenas at both geometries
		move()
		eager.RebuildAll(pool, ids)
	}
	allocs := testing.AllocsPerRun(20, func() {
		move()
		eager.RebuildAll(pool, ids)
	})
	if allocs > 1 {
		t.Fatalf("steady-state RebuildAll allocates %.1f per tick, want <= 1 (the fork closure)", allocs)
	}
}

// TestPrevEpochUseTracksDemand checks the demand signal behind the
// world's prefetch heuristic: it reports how many distinct transmitters
// asked for a neighborhood in the PREVIOUS epoch, not the current one.
func TestPrevEpochUseTracksDemand(t *testing.T) {
	grid, lazy, _, _ := shardWorld(10)
	if got := lazy.PrevEpochUse(); got != 0 {
		t.Fatalf("fresh cache PrevEpochUse = %d", got)
	}
	for id := int32(0); id < 6; id++ {
		lazy.Links(id)
		lazy.Links(id) // repeat requests must not double-count
	}
	grid.Update(0, geom.V(9999, 0)) // epoch turns over
	lazy.Links(0)
	if got := lazy.PrevEpochUse(); got != 6 {
		t.Fatalf("PrevEpochUse after epoch turnover = %d, want 6", got)
	}
}
