package radio

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/channel"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/par"
	"github.com/vanetlab/relroute/internal/prob"
	"github.com/vanetlab/relroute/internal/spatial"
)

// shardWorld populates a grid with a random cloud and returns two caches
// over the SAME grid: one exercised lazily, one via RebuildSweep.
func shardWorld(n int, model channel.Model) (*spatial.Grid, *Cache, *Cache, []int32) {
	grid := spatial.NewGrid(250)
	lazy := NewCache(grid, model)
	eager := NewCache(grid, model)
	rng := rand.New(rand.NewSource(11))
	ids := make([]int32, n)
	for id := int32(0); id < int32(n); id++ {
		grid.Update(id, geom.V(rng.Float64()*3000, rng.Float64()*500))
		ids[id] = id
	}
	return grid, lazy, eager, ids
}

// TestRebuildSweepMatchesLazy pins the prefetch contract: after a sweep,
// every neighborhood is exactly — same receivers, same order, same
// distances and losses — what the lazy Links path computes on demand,
// across epochs, shard counts, and channel models (the unit disk takes the
// batch path-loss path, shadowing exercises the receipt-probability math).
func TestRebuildSweepMatchesLazy(t *testing.T) {
	models := map[string]channel.Model{
		"unitdisk":  channel.UnitDisk{Range: 250},
		"shadowing": channel.NewShadowing(prob.DefaultReceiptModel()),
	}
	for name, model := range models {
		for _, shards := range []int{1, 2, 4} {
			grid, lazy, eager, ids := shardWorld(80, model)
			pool := par.New(shards)
			rng := rand.New(rand.NewSource(23))
			for epoch := 0; epoch < 5; epoch++ {
				eager.RebuildSweep(pool)
				for _, id := range ids {
					want := lazy.Links(id)
					got := eager.Links(id)
					if len(want) != len(got) {
						t.Fatalf("%s shards=%d epoch %d node %d: %d links, want %d", name, shards, epoch, id, len(got), len(want))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("%s shards=%d epoch %d node %d link %d: %+v, want %+v", name, shards, epoch, id, i, got[i], want[i])
						}
					}
				}
				// move a third of the nodes and advance the epoch
				for _, id := range ids {
					if id%3 == 0 {
						grid.Update(id, geom.V(rng.Float64()*3000, rng.Float64()*500))
					}
				}
			}
			pool.Close()
		}
	}
}

// TestRebuildSweepIdempotentAndCountsBuilds checks the per-epoch no-op: a
// second sweep in the same epoch does nothing (Builds does not move), and
// the build counter charges exactly one build per grid member per swept
// epoch.
func TestRebuildSweepIdempotentAndCountsBuilds(t *testing.T) {
	grid, _, eager, _ := shardWorld(60, channel.UnitDisk{Range: 250})
	pool := par.New(4)
	defer pool.Close()
	eager.RebuildSweep(pool)
	if got := eager.Builds(); got != 60 {
		t.Fatalf("first sweep built %d hoods, want 60", got)
	}
	eager.RebuildSweep(pool)
	if got := eager.Builds(); got != 60 {
		t.Fatalf("second same-epoch sweep rebuilt hoods: builds = %d, want 60", got)
	}
	grid.Update(0, geom.V(1, 499))
	eager.RebuildSweep(pool)
	if got := eager.Builds(); got != 120 {
		t.Fatalf("post-move sweep built to %d, want 120", got)
	}
}

// TestRebuildSweepSteadyStateAllocs pins the arena contract: once the
// per-shard pair arenas, the CSR snapshot, and the hood slices have warmed
// up, a sweep's only allocation is the fork closure itself — nothing
// scales with the population. A vehicle toggling between two cells keeps
// the epoch turning over (so every hood really rebuilds each pass) without
// growing any neighborhood past its warmed capacity.
func TestRebuildSweepSteadyStateAllocs(t *testing.T) {
	grid, _, eager, _ := shardWorld(100, channel.UnitDisk{Range: 250})
	pool := par.New(4)
	defer pool.Close()
	there, back := geom.V(2990, 10), geom.V(10, 490)
	tick := 0
	move := func() {
		tick++
		if tick%2 == 0 {
			grid.Update(0, there)
		} else {
			grid.Update(0, back)
		}
	}
	for i := 0; i < 4; i++ { // warm arenas at both geometries
		move()
		eager.RebuildSweep(pool)
	}
	allocs := testing.AllocsPerRun(20, func() {
		move()
		eager.RebuildSweep(pool)
	})
	if allocs > 1 {
		t.Fatalf("steady-state RebuildSweep allocates %.1f per tick, want <= 1 (the fork closure)", allocs)
	}
}

// TestSweepWorthwhile pins the eager heuristic: auto mode weighs
// previous-epoch demand times max(3, shards) against the population, and
// the forced modes override it in both directions.
func TestSweepWorthwhile(t *testing.T) {
	grid, lazy, _, _ := shardWorld(12, channel.UnitDisk{Range: 250})
	for id := int32(0); id < 4; id++ {
		lazy.Links(id)
	}
	grid.Update(0, geom.V(9999, 0)) // epoch turns over; prevReq becomes 4
	lazy.Links(0)
	if !lazy.SweepWorthwhile(4, 1) {
		t.Fatal("demand 4 of 4 at shards=1 (full saturation), want sweep")
	}
	if lazy.SweepWorthwhile(5, 1) {
		t.Fatal("demand 4 of 5 at shards=1: below saturation, want lazy")
	}
	if !lazy.SweepWorthwhile(16, 4) {
		t.Fatal("demand 4 of 16 at shards=4: 4*4 >= 16, want sweep")
	}
	if lazy.SweepWorthwhile(17, 4) {
		t.Fatal("demand 4 of 17 at shards=4: 4*4 < 17, want lazy")
	}
	if lazy.SweepWorthwhile(0, 4) {
		t.Fatal("empty population must never sweep")
	}
	lazy.SetEagerMode(EagerNever)
	if lazy.SweepWorthwhile(1, 8) {
		t.Fatal("EagerNever swept")
	}
	lazy.SetEagerMode(EagerAlways)
	if !lazy.SweepWorthwhile(1, 1) {
		t.Fatal("EagerAlways stayed lazy")
	}
	if lazy.SweepWorthwhile(0, 1) {
		t.Fatal("EagerAlways swept an empty population")
	}
}

// TestPrevEpochUseTracksDemand checks the demand signal behind the
// world's eager heuristic: it reports how many distinct transmitters
// asked for a neighborhood in the PREVIOUS epoch, not the current one.
func TestPrevEpochUseTracksDemand(t *testing.T) {
	grid, lazy, _, _ := shardWorld(10, channel.UnitDisk{Range: 250})
	if got := lazy.PrevEpochUse(); got != 0 {
		t.Fatalf("fresh cache PrevEpochUse = %d", got)
	}
	for id := int32(0); id < 6; id++ {
		lazy.Links(id)
		lazy.Links(id) // repeat requests must not double-count
	}
	grid.Update(0, geom.V(9999, 0)) // epoch turns over
	lazy.Links(0)
	if got := lazy.PrevEpochUse(); got != 6 {
		t.Fatalf("PrevEpochUse after epoch turnover = %d, want 6", got)
	}
}
