// Package channel models wireless propagation between vehicles: whether a
// frame transmitted at one position is decodable at another, the received
// signal strength (for protocols like REAR that act on RSSI), and the
// carrier-sense range (for the MAC's collision bookkeeping).
package channel

import (
	"math"
	"math/rand"

	"github.com/vanetlab/relroute/internal/prob"
)

// Model decides frame reception.
type Model interface {
	// MaxRange returns a conservative upper bound on the distance at which
	// reception is possible; the MAC uses it to prune candidate receivers.
	MaxRange() float64
	// Decodable reports whether a frame sent over distance d is received,
	// given channel randomness from rng.
	Decodable(d float64, rng *rand.Rand) bool
	// RSSI returns the received signal strength in dBm for a frame over
	// distance d, including the random shadowing realisation.
	RSSI(d float64, rng *rand.Rand) float64
	// MeanRange returns the distance at which reception probability is
	// 50%, used to parameterise analytic link-lifetime models (their r).
	MeanRange() float64
}

// Precomputed is implemented by models whose per-receiver reception
// decision splits into a deterministic per-distance term and a cheap
// stochastic decision. The deterministic term — the link budget at a given
// distance — is what the radio neighborhood cache precomputes once per
// mobility epoch, so the MAC's transmit loop never re-runs the path-loss
// math (Log10/Erfc) per frame.
//
// The contract is strict: DecodableAt(PathLoss(d), rng) must consume
// exactly the same RNG draws and return exactly the same result as
// Decodable(d, rng) for every d, so the cached and uncached transmit paths
// are byte-identical run for run (the golden-file tests rely on this).
type Precomputed interface {
	// PathLoss returns the deterministic part of the link budget at
	// distance d. The value is opaque to callers and only meaningful to
	// DecodableAt of the same model: UnitDisk returns the distance itself,
	// Shadowing folds the log-distance path loss through the receiver
	// threshold into a receipt probability.
	PathLoss(d float64) float64
	// DecodableAt decides reception from a value PathLoss returned.
	DecodableAt(loss float64, rng *rand.Rand) bool
}

// BatchPrecomputed is implemented by Precomputed models that can fill a
// whole slice of link budgets in one call. The radio sweep's inner loop
// uses it so the per-pair cost is a concrete method dispatched once per
// batch instead of an interface call per pair.
//
// PathLossInto must write exactly PathLoss(dists[i]) into dst[i] for every
// i — same expression, bit for bit — so batch-built neighborhoods are
// indistinguishable from per-pair ones. dst and dists must have the same
// length and may not overlap.
type BatchPrecomputed interface {
	Precomputed
	PathLossInto(dst, dists []float64)
}

// UnitDisk is the idealised model: every frame within Range is received,
// nothing beyond. It keeps analytic results exact, so the Fig. 3 lifetime
// validation uses it.
type UnitDisk struct {
	Range float64 // meters
}

var _ Model = UnitDisk{}

// MaxRange implements Model.
func (u UnitDisk) MaxRange() float64 { return u.Range }

// MeanRange implements Model.
func (u UnitDisk) MeanRange() float64 { return u.Range }

// Decodable implements Model.
func (u UnitDisk) Decodable(d float64, _ *rand.Rand) bool { return d <= u.Range }

var _ Precomputed = UnitDisk{}

// PathLoss implements Precomputed: the unit disk's only link-budget input
// is the distance itself.
func (u UnitDisk) PathLoss(d float64) float64 { return d }

// DecodableAt implements Precomputed.
func (u UnitDisk) DecodableAt(loss float64, _ *rand.Rand) bool { return loss <= u.Range }

var _ BatchPrecomputed = UnitDisk{}

// PathLossInto implements BatchPrecomputed: the unit disk's link budget is
// the distance itself, so the batch is a copy.
func (u UnitDisk) PathLossInto(dst, dists []float64) { copy(dst, dists) }

// RSSI implements Model with a deterministic log-distance curve so RSSI
// ordering still reflects distance.
func (u UnitDisk) RSSI(d float64, _ *rand.Rand) float64 {
	if d < 1 {
		d = 1
	}
	return 20 - 46.7 - 28*math.Log10(d)
}

// Shadowing is the log-normal shadowing model the survey lists as the
// standard signal-strength assumption: received power is normally
// distributed in dB around the log-distance path loss, and a frame is
// decodable when it exceeds the receiver threshold.
type Shadowing struct {
	Receipt prob.ReceiptModel
	// CutoffProb prunes the model's unbounded tail: distances whose
	// receipt probability falls below it are treated as out of range.
	// Zero means 0.01.
	CutoffProb float64

	maxRange float64 // cached
}

// NewShadowing returns a shadowing channel for the given receipt model.
func NewShadowing(m prob.ReceiptModel) *Shadowing {
	s := &Shadowing{Receipt: m, CutoffProb: 0.01}
	s.maxRange = s.computeMaxRange()
	return s
}

var _ Model = (*Shadowing)(nil)

func (s *Shadowing) cutoff() float64 {
	if s.CutoffProb <= 0 {
		return 0.01
	}
	return s.CutoffProb
}

func (s *Shadowing) computeMaxRange() float64 {
	lo, hi := 1.0, 20000.0
	if s.Receipt.Prob(hi) > s.cutoff() {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if s.Receipt.Prob(mid) > s.cutoff() {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// MaxRange implements Model.
func (s *Shadowing) MaxRange() float64 { return s.maxRange }

// MeanRange implements Model.
func (s *Shadowing) MeanRange() float64 { return s.Receipt.MedianRange() }

// Decodable implements Model: Bernoulli draw with the distance-dependent
// receipt probability. Defined as the composition of the Precomputed pair
// so the split API can never drift from it.
func (s *Shadowing) Decodable(d float64, rng *rand.Rand) bool {
	return s.DecodableAt(s.PathLoss(d), rng)
}

var _ Precomputed = (*Shadowing)(nil)

// PathLoss implements Precomputed. The whole deterministic chain — mean
// path loss at d, received power, threshold margin — folds into a single
// number, the receipt probability, so it is returned directly: caching it
// leaves only a uniform draw per frame. (Comparing a Gaussian shadowing
// sample against the threshold would be distribution-equivalent but would
// consume different RNG draws than Decodable; see the interface contract.)
func (s *Shadowing) PathLoss(d float64) float64 { return s.Receipt.Prob(d) }

// DecodableAt implements Precomputed: the stochastic tail of Decodable,
// draw for draw.
func (s *Shadowing) DecodableAt(loss float64, rng *rand.Rand) bool {
	if loss >= 1 {
		return true
	}
	if loss <= 0 {
		return false
	}
	return rng.Float64() < loss
}

var _ BatchPrecomputed = (*Shadowing)(nil)

// PathLossInto implements BatchPrecomputed: the same receipt-probability
// chain as PathLoss, evaluated as a direct concrete-method loop.
func (s *Shadowing) PathLossInto(dst, dists []float64) {
	if len(dists) == 0 {
		return
	}
	_ = dst[len(dists)-1] // one bounds check for the loop
	for i, d := range dists {
		dst[i] = s.Receipt.Prob(d)
	}
}

// RSSI implements Model: mean path-loss power plus a shadowing draw.
func (s *Shadowing) RSSI(d float64, rng *rand.Rand) float64 {
	mean := s.Receipt.MeanRxPower(d)
	if s.Receipt.ShadowSigmaDB <= 0 || rng == nil {
		return mean
	}
	return mean + s.Receipt.ShadowSigmaDB*rng.NormFloat64()
}
