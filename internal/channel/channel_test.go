package channel

import (
	"math/rand"
	"testing"

	"github.com/vanetlab/relroute/internal/prob"
)

func TestUnitDisk(t *testing.T) {
	u := UnitDisk{Range: 250}
	rng := rand.New(rand.NewSource(1))
	if !u.Decodable(250, rng) {
		t.Error("frame at exactly the range not decodable")
	}
	if u.Decodable(250.01, rng) {
		t.Error("frame beyond the range decodable")
	}
	if u.MaxRange() != 250 || u.MeanRange() != 250 {
		t.Error("ranges wrong")
	}
}

func TestUnitDiskRSSIMonotone(t *testing.T) {
	u := UnitDisk{Range: 250}
	prev := 1000.0
	for d := 1.0; d < 1000; d *= 2 {
		r := u.RSSI(d, nil)
		if r >= prev {
			t.Fatalf("RSSI not decreasing at %v", d)
		}
		prev = r
	}
}

func TestShadowingRanges(t *testing.T) {
	s := NewShadowing(prob.DefaultReceiptModel())
	if s.MaxRange() <= s.MeanRange() {
		t.Fatalf("max range %v should exceed median range %v", s.MaxRange(), s.MeanRange())
	}
	// beyond max range reception probability is below the cutoff
	if p := s.Receipt.Prob(s.MaxRange() * 1.01); p > s.CutoffProb {
		t.Fatalf("prob beyond max range = %v", p)
	}
}

func TestShadowingDecodableStatistics(t *testing.T) {
	s := NewShadowing(prob.DefaultReceiptModel())
	rng := rand.New(rand.NewSource(2))
	median := s.MeanRange()
	const n = 20000
	ok := 0
	for i := 0; i < n; i++ {
		if s.Decodable(median, rng) {
			ok++
		}
	}
	frac := float64(ok) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("decodable fraction at median range = %v, want ≈0.5", frac)
	}
	// very close: always decodable; very far: never
	if !s.Decodable(1, rng) {
		t.Error("1 m frame lost")
	}
	okFar := 0
	for i := 0; i < 1000; i++ {
		if s.Decodable(s.MaxRange()*2, rng) {
			okFar++
		}
	}
	if okFar > 30 {
		t.Errorf("%d of 1000 frames decoded at 2x max range", okFar)
	}
}

func TestShadowingRSSIVariance(t *testing.T) {
	m := prob.DefaultReceiptModel()
	s := NewShadowing(m)
	rng := rand.New(rand.NewSource(3))
	const d = 100.0
	mean := m.MeanRxPower(d)
	sum, sumSq := 0.0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		r := s.RSSI(d, rng)
		sum += r
		sumSq += r * r
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if diff := gotMean - mean; diff > 0.2 || diff < -0.2 {
		t.Fatalf("RSSI mean = %v, want %v", gotMean, mean)
	}
	wantVar := m.ShadowSigmaDB * m.ShadowSigmaDB
	if gotVar < wantVar*0.9 || gotVar > wantVar*1.1 {
		t.Fatalf("RSSI variance = %v, want ≈%v", gotVar, wantVar)
	}
	// nil rng degrades to the deterministic mean
	if got := s.RSSI(d, nil); got != mean {
		t.Fatalf("RSSI(nil rng) = %v, want mean %v", got, mean)
	}
}

// TestPrecomputedContract pins the split-API guarantee for both models:
// DecodableAt(PathLoss(d), rng) must return the same verdict and consume
// the same RNG draws as Decodable(d, rng) at every distance — that
// equivalence is what makes the epoch-cached transmit path byte-identical
// to a per-frame evaluation.
func TestPrecomputedContract(t *testing.T) {
	models := map[string]Model{
		"unitdisk":  UnitDisk{Range: 250},
		"shadowing": NewShadowing(prob.DefaultReceiptModel()),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			pre, ok := m.(Precomputed)
			if !ok {
				t.Fatalf("%s does not implement Precomputed", name)
			}
			rngA := rand.New(rand.NewSource(42))
			rngB := rand.New(rand.NewSource(42))
			for d := 0.0; d < 1200; d += 0.7 {
				split := pre.DecodableAt(pre.PathLoss(d), rngA)
				direct := m.Decodable(d, rngB)
				if split != direct {
					t.Fatalf("d=%v: split verdict %v, direct %v", d, split, direct)
				}
			}
			for i := 0; i < 8; i++ {
				if a, b := rngA.Float64(), rngB.Float64(); a != b {
					t.Fatalf("RNG streams diverged: split path consumed different draws")
				}
			}
		})
	}
}

// TestBatchPathLossContract pins the bulk API for both models: PathLossInto
// must write exactly PathLoss(d) — bit for bit — for every distance, so a
// batch-built radio neighborhood is indistinguishable from a per-pair one.
func TestBatchPathLossContract(t *testing.T) {
	models := map[string]Model{
		"unitdisk":  UnitDisk{Range: 250},
		"shadowing": NewShadowing(prob.DefaultReceiptModel()),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			batch, ok := m.(BatchPrecomputed)
			if !ok {
				t.Fatalf("%s does not implement BatchPrecomputed", name)
			}
			var dists []float64
			for d := 0.0; d < 1200; d += 0.7 {
				dists = append(dists, d)
			}
			dst := make([]float64, len(dists))
			batch.PathLossInto(dst, dists)
			for i, d := range dists {
				if want := batch.PathLoss(d); dst[i] != want {
					t.Fatalf("d=%v: batch loss %v, scalar %v", d, dst[i], want)
				}
			}
			batch.PathLossInto(nil, nil) // empty batch is a no-op, not a panic
		})
	}
}
