package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	tests := []struct {
		name string
		got  Vec2
		want Vec2
	}{
		{"add", V(1, 2).Add(V(3, -1)), V(4, 1)},
		{"sub", V(1, 2).Sub(V(3, -1)), V(-2, 3)},
		{"scale", V(1, 2).Scale(-2), V(-2, -4)},
		{"unit-x", V(5, 0).Unit(), V(1, 0)},
		{"unit-zero", V(0, 0).Unit(), V(0, 0)},
		{"lerp-mid", Lerp(V(0, 0), V(2, 4), 0.5), V(1, 2)},
		{"lerp-end", Lerp(V(1, 1), V(3, 3), 1), V(3, 3)},
		{"rotate-90", V(1, 0).Rotate(math.Pi / 2), V(0, 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !almostEq(tc.got.X, tc.want.X, 1e-12) || !almostEq(tc.got.Y, tc.want.Y, 1e-12) {
				t.Errorf("got %v want %v", tc.got, tc.want)
			}
		})
	}
}

func TestDotCrossLen(t *testing.T) {
	if got := V(1, 2).Dot(V(3, 4)); got != 11 {
		t.Errorf("dot = %v, want 11", got)
	}
	if got := V(1, 0).Cross(V(0, 1)); got != 1 {
		t.Errorf("cross = %v, want 1", got)
	}
	if got := V(3, 4).Len(); got != 5 {
		t.Errorf("len = %v, want 5", got)
	}
	if got := V(3, 4).LenSq(); got != 25 {
		t.Errorf("lensq = %v, want 25", got)
	}
	if got := V(0, 0).Dist(V(3, 4)); got != 5 {
		t.Errorf("dist = %v, want 5", got)
	}
}

func TestAngle(t *testing.T) {
	if got := V(0, 1).Angle(); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("angle = %v, want pi/2", got)
	}
	if got := V(-1, 0).Angle(); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("angle = %v, want pi", got)
	}
}

func TestProjectAndDecompose(t *testing.T) {
	// velocity 3 along x, 4 along y projected on the x axis
	along, perp := Decompose(V(3, 4), V(10, 0))
	if !almostEq(along.X, 3, 1e-12) || !almostEq(along.Y, 0, 1e-12) {
		t.Errorf("along = %v", along)
	}
	if !almostEq(perp.X, 0, 1e-12) || !almostEq(perp.Y, 4, 1e-12) {
		t.Errorf("perp = %v", perp)
	}
	if got := Project(V(3, 4), V(0, 2)); !almostEq(got, 4, 1e-12) {
		t.Errorf("project = %v, want 4", got)
	}
	if got := Project(V(3, 4), V(0, 0)); got != 0 {
		t.Errorf("project on zero axis = %v, want 0", got)
	}
}

func TestDecomposeReconstructs(t *testing.T) {
	// property: along + perp == v for any axis
	f := func(vx, vy, ax, ay float64) bool {
		if math.IsNaN(vx) || math.IsNaN(vy) || math.IsNaN(ax) || math.IsNaN(ay) {
			return true
		}
		v := V(clampTest(vx), clampTest(vy))
		axis := V(clampTest(ax), clampTest(ay))
		along, perp := Decompose(v, axis)
		sum := along.Add(perp)
		if axis.IsZero() {
			return true
		}
		return almostEq(sum.X, v.X, 1e-6) && almostEq(sum.Y, v.Y, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampTest(v float64) float64 {
	if v > 1e6 {
		return 1e6
	}
	if v < -1e6 {
		return -1e6
	}
	return v
}

func TestSameDirection(t *testing.T) {
	axis := V(1, 0)
	tests := []struct {
		name   string
		va, vb Vec2
		want   bool
	}{
		{"parallel", V(10, 0), V(5, 0), true},
		{"antiparallel", V(10, 0), V(-5, 0), false},
		{"perpendicular-agree", V(10, 1), V(5, 2), true},
		{"vertical-conflict", V(10, 1), V(5, -2), false},
		{"stationary-b", V(10, 0), V(0, 0), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SameDirection(tc.va, tc.vb, axis); got != tc.want {
				t.Errorf("SameDirection(%v,%v) = %v, want %v", tc.va, tc.vb, got, tc.want)
			}
		})
	}
}

func TestDistanceProperties(t *testing.T) {
	// symmetry and triangle inequality
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := V(clampTest(ax), clampTest(ay))
		b := V(clampTest(bx), clampTest(by))
		c := V(clampTest(cx), clampTest(cy))
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegment(t *testing.T) {
	s := Segment{A: V(0, 0), B: V(10, 0)}
	if s.Len() != 10 {
		t.Fatalf("len = %v", s.Len())
	}
	if got := s.At(0.3); !almostEq(got.X, 3, 1e-12) {
		t.Errorf("At(0.3) = %v", got)
	}
	if got := s.PointAtDistance(4); !almostEq(got.X, 4, 1e-12) {
		t.Errorf("PointAtDistance(4) = %v", got)
	}
	if got := s.PointAtDistance(-5); got != s.A {
		t.Errorf("PointAtDistance(-5) = %v, want clamp to A", got)
	}
	if got := s.PointAtDistance(50); got != s.B {
		t.Errorf("PointAtDistance(50) = %v, want clamp to B", got)
	}
	q, tt := s.ClosestPoint(V(3, 4))
	if !almostEq(q.X, 3, 1e-12) || !almostEq(q.Y, 0, 1e-12) || !almostEq(tt, 0.3, 1e-12) {
		t.Errorf("ClosestPoint = %v t=%v", q, tt)
	}
	if got := s.DistToPoint(V(3, 4)); !almostEq(got, 4, 1e-12) {
		t.Errorf("DistToPoint = %v", got)
	}
	// degenerate segment
	d := Segment{A: V(1, 1), B: V(1, 1)}
	q, tt = d.ClosestPoint(V(5, 5))
	if q != d.A || tt != 0 {
		t.Errorf("degenerate ClosestPoint = %v t=%v", q, tt)
	}
}

func TestClosestPointIsClosest(t *testing.T) {
	// property: the reported closest point is no farther than the
	// endpoints and any sampled interior point
	f := func(px, py float64) bool {
		s := Segment{A: V(0, 0), B: V(100, 35)}
		p := V(clampTest(px), clampTest(py))
		q, _ := s.ClosestPoint(p)
		d := q.Dist(p)
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if s.At(frac).Dist(p) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(V(10, 20), V(0, 0)) // corners in any order
	if r.Min != V(0, 0) || r.Max != V(10, 20) {
		t.Fatalf("NewRect = %+v", r)
	}
	if !r.Contains(V(5, 5)) || r.Contains(V(11, 5)) || r.Contains(V(5, -1)) {
		t.Error("Contains wrong")
	}
	if r.Width() != 10 || r.Height() != 20 {
		t.Errorf("w/h = %v/%v", r.Width(), r.Height())
	}
	if r.Center() != V(5, 10) {
		t.Errorf("center = %v", r.Center())
	}
	e := r.Expand(2)
	if e.Min != V(-2, -2) || e.Max != V(12, 22) {
		t.Errorf("expand = %+v", e)
	}
	u := r.Union(NewRect(V(-5, 5), V(3, 30)))
	if u.Min != V(-5, 0) || u.Max != V(10, 30) {
		t.Errorf("union = %+v", u)
	}
	if got := r.Clamp(V(50, -3)); got != V(10, 0) {
		t.Errorf("clamp = %v", got)
	}
}
