// Package geom provides the planar geometry primitives used throughout the
// simulator: 2-D vectors, line segments, and the projection helpers that the
// paper's direction-decomposition rule (Sec. IV-A-2, Fig. 4) is built on.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the simulation plane. Units are meters
// for positions and meters/second for velocities.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{v.X * k, v.Y * k} }

// Dot returns the dot product v · w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean norm of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared Euclidean norm of v. It avoids the sqrt when
// only comparisons are needed.
func (v Vec2) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Len() }

// DistSq returns the squared distance between v and w.
func (v Vec2) DistSq(w Vec2) float64 { return v.Sub(w).LenSq() }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged so callers never divide by zero.
func (v Vec2) Unit() Vec2 {
	l := v.Len()
	if l == 0 {
		return Vec2{}
	}
	return Vec2{v.X / l, v.Y / l}
}

// Angle returns the angle of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// IsZero reports whether both components are exactly zero.
func (v Vec2) IsZero() bool { return v.X == 0 && v.Y == 0 }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }

// Lerp linearly interpolates between a and b: result = a + t*(b-a).
func Lerp(a, b Vec2, t float64) Vec2 {
	return Vec2{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}

// Project returns the scalar projection of v onto the direction of axis,
// i.e. the signed length of v along axis. A zero axis yields 0.
func Project(v, axis Vec2) float64 {
	u := axis.Unit()
	return v.Dot(u)
}

// Decompose splits v into its component along axis and the residual
// perpendicular component, implementing the speed decomposition of Fig. 4:
// the horizontal line through two vehicles is the axis, and the projections
// of both velocities onto it decide whether they travel the same direction.
func Decompose(v, axis Vec2) (along, perp Vec2) {
	u := axis.Unit()
	along = u.Scale(v.Dot(u))
	perp = v.Sub(along)
	return along, perp
}

// SameDirection reports whether velocities va and vb point the same way
// along the axis joining the two vehicles, per the paper's rule: both the
// horizontal projections and the vertical projections must have positive
// products. Zero projections count as agreeing (a stationary vehicle does
// not force "opposite").
func SameDirection(va, vb, axis Vec2) bool {
	u := axis.Unit()
	ah, bh := va.Dot(u), vb.Dot(u)
	perp := Vec2{-u.Y, u.X}
	av, bv := va.Dot(perp), vb.Dot(perp)
	horizontalAgree := ah*bh >= 0
	verticalAgree := av*bv >= 0
	return horizontalAgree && verticalAgree
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Vec2
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction from A to B.
func (s Segment) Dir() Vec2 { return s.B.Sub(s.A).Unit() }

// At returns the point a fraction t along the segment (t in [0,1] stays on
// the segment; values outside extrapolate).
func (s Segment) At(t float64) Vec2 { return Lerp(s.A, s.B, t) }

// PointAtDistance returns the point d meters from A toward B. Distances are
// clamped to the segment.
func (s Segment) PointAtDistance(d float64) Vec2 {
	l := s.Len()
	if l == 0 {
		return s.A
	}
	t := d / l
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return s.At(t)
}

// ClosestPoint returns the point on the segment closest to p and the
// parameter t in [0,1] at which it occurs.
func (s Segment) ClosestPoint(p Vec2) (Vec2, float64) {
	ab := s.B.Sub(s.A)
	denom := ab.LenSq()
	if denom == 0 {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(ab) / denom
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return s.At(t), t
}

// DistToPoint returns the distance from p to the nearest point of the
// segment.
func (s Segment) DistToPoint(p Vec2) float64 {
	q, _ := s.ClosestPoint(p)
	return q.Dist(p)
}

// Rect is an axis-aligned rectangle, used for zones (Fig. 6) and world
// bounds. Min is the lower-left corner and Max the upper-right.
type Rect struct {
	Min, Max Vec2
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Vec2) Rect {
	return Rect{
		Min: Vec2{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Vec2{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Vec2 {
	return Vec2{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Expand grows the rectangle by m meters on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Vec2{r.Min.X - m, r.Min.Y - m},
		Max: Vec2{r.Max.X + m, r.Max.Y + m},
	}
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Vec2{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Vec2{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Vec2) Vec2 {
	return Vec2{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}
