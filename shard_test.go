package relroute_test

// Shard-determinism tests: the intra-run parallel engine must be an
// implementation detail. ExperimentConfig.Shards (and Options.Shards)
// change where per-tick work runs, never what it computes, so every
// experiment table is byte-identical for any fixed shard count — the
// second determinism axis next to Workers, and the contract that makes
// "same seed, same output" survive on any machine.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/vanetlab/relroute"
)

// TestGoldenOutputsSharded re-runs the golden experiments with Shards=4 —
// at one worker and eight — against the SAME golden files the sequential
// engine is pinned to. Nothing about the expected bytes changes: the
// sharded engine has no sanctioned differences.
func TestGoldenOutputsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are full simulations; skipped in -short")
	}
	for _, id := range []string{"fig2", "abl-storm", "table1", "abl-disaster", "chaos"} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("%s/w%d/s4", id, workers)
			t.Run(name, func(t *testing.T) {
				tab, err := relroute.RunExperiment(id, relroute.ExperimentConfig{
					Seed: 1, Quick: true, Workers: workers, Shards: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := tab.String()
				path := filepath.Join("testdata", fmt.Sprintf("golden_%s_w%d.txt", id, workers))
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if got != string(want) {
					t.Fatalf("sharded run of %s diverged from the sequential golden capture.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
				}
			})
		}
	}
}

// TestShardInvariance is the -short half of the contract, sized so that
// `go test -race -short` drives the sharded engine — churn worlds, trace
// replay, the link-accuracy audit — under the race detector on every CI
// run: each experiment's table at Shards=4 must be byte-identical to
// Shards=1 at both one worker and eight.
func TestShardInvariance(t *testing.T) {
	for _, id := range []string{"churn", "trace-replay", "link-accuracy", "chaos"} {
		t.Run(id, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 8} {
				for _, shards := range []int{1, 4} {
					tab, err := relroute.RunExperiment(id, relroute.ExperimentConfig{
						Seed: 1, Quick: true, Workers: workers, Shards: shards,
					})
					if err != nil {
						t.Fatal(err)
					}
					got := tab.String()
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("%s at workers=%d shards=%d diverged:\n--- got ---\n%s\n--- want ---\n%s",
							id, workers, shards, got, want)
					}
				}
			}
		})
	}
}
