// Package relroute is a reliable-routing toolkit for vehicular ad hoc
// networks (VANETs), reproducing "Reliable Routing in Vehicular Ad hoc
// Networks" (Yan, Mitton, Li — WWASN/ICDCS-W 2010) as a runnable system:
// a discrete-event VANET simulator (IDM mobility over road networks,
// log-normal shadowing radio, CSMA MAC) and implementations of
// representative routing protocols from all five categories of the
// paper's taxonomy — connectivity-, mobility-, infrastructure-,
// geographic-location-, and probability-model-based — including the
// authors' ticket-based stability-probing protocol (TBP-SS).
//
// Quickstart:
//
//	sum, err := relroute.Run("TBP-SS", relroute.Options{
//		Seed: 1, Vehicles: 60, Duration: 60,
//	})
//	if err != nil { ... }
//	fmt.Println(sum) // PDR, delay, overhead, ...
//
// Every figure and table of the paper maps to an experiment that can be
// regenerated programmatically:
//
//	tab, err := relroute.RunExperiment("table1", relroute.ExperimentConfig{})
//	fmt.Print(tab)
//
// or from the command line via cmd/vanetbench.
package relroute

import (
	"fmt"

	"github.com/vanetlab/relroute/internal/checkpoint"
	"github.com/vanetlab/relroute/internal/core"
	"github.com/vanetlab/relroute/internal/faults"
	"github.com/vanetlab/relroute/internal/geom"
	"github.com/vanetlab/relroute/internal/harness"
	"github.com/vanetlab/relroute/internal/link"
	"github.com/vanetlab/relroute/internal/linkstate"
	"github.com/vanetlab/relroute/internal/metrics"
	"github.com/vanetlab/relroute/internal/mobility"
	"github.com/vanetlab/relroute/internal/runner"
	"github.com/vanetlab/relroute/internal/scenario"
	"github.com/vanetlab/relroute/internal/sim"
	"github.com/vanetlab/relroute/internal/traces"
)

// Options parameterises a simulation run; see scenario.Options for the
// field-by-field documentation. The zero value is a 60-vehicle, 2 km
// highway with four CBR flows for 60 simulated seconds.
type Options = scenario.Options

// Summary is the metrics snapshot of one run: PDR, delays, hop counts,
// control overhead, collision rate, and route-maintenance counters.
type Summary = metrics.Summary

// ExperimentConfig configures a paper-experiment run. Quick mode shrinks
// populations and durations for CI.
type ExperimentConfig = harness.Config

// Experiment is one reproducible paper artifact (figure or table).
type Experiment = harness.Experiment

// Table is the rendered result of an experiment.
type Table = harness.Table

// TaxonomyEntry is one protocol of the paper's Fig. 1 catalogue.
type TaxonomyEntry = core.Entry

// Category is one of the five routing classes of the taxonomy.
type Category = core.Category

// Taxonomy classes, re-exported from the core package.
const (
	Connectivity   = core.Connectivity
	Mobility       = core.Mobility
	Infrastructure = core.Infrastructure
	Geographic     = core.Geographic
	Probability    = core.Probability
)

// Kind selects the world topology of a run.
type Kind = scenario.Kind

// Topology kinds, re-exported from the scenario package.
const (
	HighwayKind = scenario.HighwayKind
	CityKind    = scenario.CityKind
	RingKind    = scenario.RingKind
)

// Protocols returns the names accepted by Run: at least two protocols per
// taxonomy category.
func Protocols() []string { return scenario.Protocols() }

// Scenarios lists the named scenario presets accepted by Options.Scenario
// — composed topology/traffic/workload bundles like "city-rush" (an
// open-world grid under a rush-hour arrival ramp) or "v2i" (roadside
// servers with request/response traffic).
func Scenarios() []string { return scenario.Names() }

// Estimators lists the reliability plane's registered link-quality
// estimator names, accepted by Options.Estimator: "kinematic" (Eqn 4 on
// beaconed kinematics), "rssi" (signal-trend extrapolation), "receipt"
// (MAC-feedback EWMA with an age-based residual), and "composite" (the
// default: kinematic lifetime + RSSI receipt probability).
func Estimators() []string { return linkstate.Names() }

// LinkAccuracyCell is one (estimator, scenario) cell of the link-accuracy
// experiment: prediction MAE/bias against ground-truth link breaks.
type LinkAccuracyCell = harness.LinkAccCell

// LinkAccuracy runs the estimator × scenario prediction-accuracy grid and
// returns its cells (the structured form of the "link-accuracy"
// experiment, used by vanetbench's linkacc subcommand).
func LinkAccuracy(cfg ExperimentConfig) ([]LinkAccuracyCell, error) {
	return harness.LinkAccuracyData(cfg)
}

// LinkAccuracyTable renders accuracy cells as the experiment's table —
// the same renderer RunExperiment("link-accuracy") uses.
func LinkAccuracyTable(cells []LinkAccuracyCell) *Table {
	return harness.LinkAccuracyTable(cells)
}

// LinkAuditHorizon is the cap, in seconds, applied to both predicted and
// observed residual lifetimes by the link-accuracy audit.
const LinkAuditHorizon = harness.LinkAccuracyHorizon

// ScenarioDescriptions maps each named scenario to its one-line
// description, for listings.
func ScenarioDescriptions() map[string]string { return scenario.Descriptions() }

// FaultProfiles lists the fault plane's registered chaos profiles,
// accepted by Options.Faults: deterministic, seeded failure schedules
// like "rsu-blackout" (every RSU dies at half-time), "rolling-crashes"
// (vehicles crash and recover in sequence), "jammed-corridor" (a lossy
// geometric region), "partition" (a hard roadnet cut), and
// "energy-depletion" (relays dying one by one).
func FaultProfiles() []string { return faults.Names() }

// FaultProfileDescriptions maps each fault profile to its one-line
// description, for listings.
func FaultProfileDescriptions() map[string]string { return faults.Descriptions() }

// ChaosCell is one (fault profile, protocol) cell of the chaos
// experiment: whole-run and fault-window PDR plus the recovery metrics.
type ChaosCell = harness.ChaosCell

// Chaos runs the fault-profile × protocol degradation grid and returns
// its cells (the structured form of the "chaos" experiment, used by
// vanetbench's chaos subcommand).
func Chaos(cfg ExperimentConfig) ([]ChaosCell, error) {
	return harness.ChaosData(cfg)
}

// ChaosTable renders chaos cells as the experiment's table — the same
// renderer RunExperiment("chaos") uses.
func ChaosTable(cells []ChaosCell) *Table {
	return harness.ChaosTable(cells)
}

// Track is one vehicle's recorded trajectory, replayable through
// Options.Tracks (or from a SUMO FCD file via Options.TracePath). The
// track's waypoint span is its active window: the vehicle joins the world
// when the trace begins and leaves when it ends.
type Track = mobility.Track

// Waypoint is one sampled trace point of a Track.
type Waypoint = mobility.Waypoint

// ReadTraceFile parses a SUMO floating-car-data (FCD) XML export into
// replayable tracks.
func ReadTraceFile(path string) ([]Track, error) { return traces.ReadFile(path) }

// WriteTraceFile serialises tracks as a SUMO FCD export document.
func WriteTraceFile(path string, tracks []Track) error { return traces.WriteFile(path, tracks) }

// Run builds and executes one simulation of the named protocol.
func Run(protocol string, opts Options) (Summary, error) {
	return scenario.RunProtocol(protocol, opts)
}

// BuildScenario assembles a simulation of the named protocol without
// running it — the entry point for checkpointed execution and for callers
// that interrupt or instrument the run.
func BuildScenario(protocol string, opts Options) (*Scenario, error) {
	return scenario.Build(protocol, opts)
}

// ErrInterrupted is returned (wrapped) by runs whose engine was stopped
// early via Interrupt — a timeout, a cancelled campaign, or Ctrl-C.
var ErrInterrupted = sim.ErrInterrupted

// Checkpoint is a point-in-time snapshot of a running simulation: the
// run's identity (protocol + options), its progress (simulation time and
// event count), the full RNG stream table, and a state digest. Restoring
// rebuilds the run deterministically and proves — by digest and stream
// verification — that the continuation is byte-identical to the
// uninterrupted run. See internal/checkpoint for the design.
type Checkpoint = checkpoint.Snapshot

// CheckpointPolicy configures segmented execution with periodic snapshot
// writes (RunCheckpointed).
type CheckpointPolicy = checkpoint.Policy

// Checkpoint error classes, for errors.Is: a non-checkpoint file, a
// corrupted or truncated payload, an incompatible format version, and a
// restore whose re-derived state failed verification.
var (
	ErrCheckpointMagic    = checkpoint.ErrMagic
	ErrCheckpointChecksum = checkpoint.ErrChecksum
	ErrCheckpointVersion  = checkpoint.ErrVersion
	ErrCheckpointVerify   = checkpoint.ErrVerify
)

// ReadCheckpoint reads and validates a checkpoint file (magic, checksum,
// format version).
func ReadCheckpoint(path string) (*Checkpoint, error) { return checkpoint.ReadFile(path) }

// WriteCheckpoint atomically writes a checkpoint file.
func WriteCheckpoint(path string, snap *Checkpoint) error { return checkpoint.WriteFile(path, snap) }

// RestoreCheckpoint rebuilds the snapshot's run and fast-forwards it to
// the checkpoint boundary, verifying the state digest and every RNG
// stream. Mutate snap.Opts.Shards first to restore at a different shard
// count — shard count is not part of a run's identity.
func RestoreCheckpoint(snap *Checkpoint) (*Scenario, error) { return checkpoint.Restore(snap) }

// RunCheckpointed executes a scenario (fresh or restored) in
// checkpoint-spaced segments, byte-identical to an unsegmented run. done
// is false when the run stopped early at pol.StopAt with a checkpoint on
// disk.
func RunCheckpointed(sc *Scenario, pol CheckpointPolicy) (sum Summary, done bool, err error) {
	return checkpoint.Run(sc, pol)
}

// Campaign is an ordered batch of simulation runs; see BatchRun and
// BatchSpec for assembling one.
type Campaign = runner.Campaign

// BatchRun is one run of a campaign: a protocol on one option set. Its
// Setup hook receives the built Scenario before execution — the seam for
// failure injection and extra instrumentation events.
type BatchRun = runner.Run

// Scenario is an assembled, not-yet-run simulation, as passed to a
// BatchRun's Setup hook.
type Scenario = scenario.Scenario

// BatchSpec declares a run grid — the cross product of protocols ×
// option sets × replication seeds — that expands into campaign runs in
// deterministic order.
type BatchSpec = runner.Spec

// BatchResult pairs a campaign run with its summary or error.
type BatchResult = runner.Result

// Aggregate holds cross-replication statistics (mean, stddev, 95% CI)
// over every numeric Summary field.
type Aggregate = metrics.Aggregate

// Stat is one aggregated metric: sample mean, sample stddev, and the 95%
// confidence half-width across replications.
type Stat = metrics.Stat

// RunBatch executes a campaign across a pool of workers (<= 0 means
// GOMAXPROCS) and returns one result per run, in submission order. For a
// fixed per-run seed the results are identical for any worker count: each
// run is a self-contained single-threaded simulation.
func RunBatch(c Campaign, workers int) []BatchResult {
	return runner.Execute(c, workers)
}

// BatchPool executes campaigns with explicit policy: worker count,
// per-run timeout, retry budget, auto-checkpointing (CheckpointDir), and
// — via ExecuteContext / ExecuteResumable — cancellation and durable
// campaign manifests.
type BatchPool = runner.Pool

// CampaignJournal is a durable campaign manifest: completed runs are
// recorded in an append-only JSONL file, and re-executing the same
// campaign against it skips them, returning the recorded summaries
// byte-identically.
type CampaignJournal = runner.Journal

// OpenCampaignJournal opens (or creates) the manifest at path for the
// campaign. An existing file must belong to the same campaign — a
// mismatched fingerprint is an error.
func OpenCampaignJournal(path string, c Campaign) (*CampaignJournal, error) {
	return runner.OpenJournal(path, c)
}

// CampaignFingerprint hashes a campaign's run list — the identity a
// CampaignJournal is keyed by.
func CampaignFingerprint(c Campaign) uint64 { return runner.CampaignHash(c) }

// Summaries unwraps batch results into summaries, surfacing the first
// failed run as an error.
func Summaries(results []BatchResult) ([]Summary, error) {
	return runner.Summaries(results)
}

// Replications groups batch results into consecutive blocks of k — one
// block per (protocol, grid point) cell when the campaign came from a
// BatchSpec whose Seeds axis has length k. If k does not divide
// len(results) — e.g. the campaign mixes spec expansions with explicit
// runs — the trailing partial block is dropped.
func Replications(results []BatchResult, k int) [][]BatchResult {
	return runner.Replications(results, k)
}

// AggregateSummaries folds per-seed summaries of one scenario into
// cross-seed statistics.
func AggregateSummaries(sums []Summary) Aggregate {
	return metrics.AggregateSummaries(sums)
}

// Experiments lists every reproducible figure/table experiment.
func Experiments() []Experiment { return harness.All() }

// RunExperiment regenerates one paper artifact by ID (fig1..fig6, table1,
// abl-*).
func RunExperiment(id string, cfg ExperimentConfig) (*Table, error) {
	exp, ok := harness.ByID(id)
	if !ok {
		ids := make([]string, 0)
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
		return nil, fmt.Errorf("relroute: unknown experiment %q (known: %v)", id, ids)
	}
	return exp.Run(cfg)
}

// Taxonomy returns the paper's Fig. 1 protocol catalogue with
// implementation pointers.
func Taxonomy() []TaxonomyEntry { return core.Taxonomy() }

// LinkLifetime solves the paper's Eqn (4) for two vehicles with constant
// planar velocities: the time until their distance reaches the
// communication range r. It returns relroute.Forever for links that never
// break under the model.
func LinkLifetime(posA, velA, posB, velB Vec2, r float64) float64 {
	return link.LifetimeVec(posA, velA, posB, velB, r)
}

// Forever is the lifetime of a link that never breaks under the model.
const Forever = link.Forever

// Vec2 is a position (meters) or velocity (m/s) in the simulation plane.
type Vec2 = geom.Vec2

// V constructs a Vec2.
func V(x, y float64) Vec2 { return geom.V(x, y) }

// PathLifetime composes per-link lifetimes with the paper's rule: the
// lifetime of a routing path is the minimum over its links.
func PathLifetime(links []float64) float64 { return link.PathLifetime(links) }

// LinkStability computes the probability-model stability metric (expected
// or mean link duration) behind TBP-SS; see core.LinkStability.
func LinkStability(m core.Metric, params core.StabilityParams, posA, velA, posB, velB Vec2, r float64) float64 {
	return core.LinkStability(m, params, posA, velA, posB, velB, r)
}

// Stability metric selectors, re-exported from the core package.
const (
	MetricExpectedDuration = core.MetricExpectedDuration
	MetricMeanDuration     = core.MetricMeanDuration
	MetricDeterministic    = core.MetricDeterministic
)

// StabilityParams configures the probability model behind LinkStability.
type StabilityParams = core.StabilityParams
